"""Offline happens-before analysis of a monitored run (the RMCSan engine).

The engine replays the structured event stream collected by
:class:`~repro.analysis.monitor.SyncMonitor` — the emission order is a
valid observation order because the simulation kernel is sequential — and
maintains one vector clock per *actor* (user process ``p{rank}`` or server
thread ``s{node}``).

Happens-before edges (see ``docs/analysis.md`` for the full model):

* **program order** — consecutive events of one actor;
* **issue -> apply** — a server joins the issuing client's clock when it
  starts applying a remote put/get/acc/rmw;
* **apply -> completion** — a blocking client (get/rmw reply) joins the
  server's clock at apply time;
* **fence** — ``fence_done`` joins the apply-time clocks of every covered
  operation (all ops the actor issued to that node);
* **barrier** — ``barrier_exit`` joins every participant's enter clock and
  the apply-time clocks of their pre-enter outstanding operations;
* **collectives** — an exit joins every recorded enter of the same epoch
  (only all-to-all collectives are instrumented);
* **lock release -> acquire** — an acquire joins the clock stored by the
  previous release of the same lock;
* **sync cells** — reads of release/acquire cells (lock words, ``op_done``
  and notify counters) join the clock of their last write;
* **NIC offload** — a ``nic_combine`` joins what the NIC folded in (the
  host's doorbell snapshot, the sending NIC's clock at frame injection,
  or the server's clock at the mirrored ``op_done`` bump), and a
  ``nic_release`` must *dominate every rank's doorbell* of its epoch —
  the proof that the NIC protocol cannot release a host early; the host
  joins the release clock at ``barrier_exit``.

Checks: data races on plain cells (conflicting, HB-unordered, not both
atomic), fence-counting violations (``op_done`` over/under-credit, fence
or barrier completing with un-applied covered operations), lock safety
(two holders, unlock-without-hold, non-FIFO ticket grants) and deadlock
(wait-for-graph cycle over locks still pending at end of trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Violation", "SanReport", "HBAnalyzer", "CREDIT_OPS"]

#: Remote operations whose application bumps the target's ``op_done``
#: counter (the paper's fence-counted, store-class operations).
CREDIT_OPS = ("put", "acc")

#: Cap on reported violations per category (the counters keep exact totals).
_REPORT_CAP = 50


@dataclass
class Violation:
    """One detected protocol violation."""

    kind: str  # data-race | fence | barrier | lock | deadlock
    time: float
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return f"[{self.kind}] t={self.time:.3f}us: {self.message}"


@dataclass
class SanReport:
    """Outcome of one happens-before analysis."""

    violations: List[Violation] = field(default_factory=list)
    events_analyzed: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    suppressed: int = 0

    def ok(self) -> bool:
        return not self.violations and not self.suppressed

    def add(self, violation: Violation) -> None:
        self.counts[violation.kind] = self.counts.get(violation.kind, 0) + 1
        if self.counts[violation.kind] <= _REPORT_CAP:
            self.violations.append(violation)
        else:
            self.suppressed += 1

    def of_kind(self, kind: str) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]

    def render(self) -> str:
        lines = [
            f"RMCSan: {self.events_analyzed} events analyzed, "
            f"{sum(self.counts.values())} violation(s)"
        ]
        for v in self.violations:
            lines.append("  " + v.render())
        if self.suppressed:
            lines.append(f"  ... {self.suppressed} further violation(s) suppressed")
        if self.ok():
            lines.append("  no violations: run is race-free and protocol-clean")
        return "\n".join(lines)


class _CellState:
    """FastTrack-style per-cell access history (epochs, not full clocks)."""

    __slots__ = ("write", "reads")

    def __init__(self):
        self.write: Optional[Tuple[str, int, str]] = None  # actor, tick, mode
        self.reads: Dict[str, Tuple[int, str]] = {}


class _OpRecord:
    """Lifecycle of one remote operation."""

    __slots__ = (
        "actor",
        "op",
        "node",
        "dst_rank",
        "applied",
        "issue_snap",
        "apply_snap",
        "issue_time",
    )

    def __init__(self, actor: str, op: str, node: int, dst_rank: int):
        self.actor = actor
        self.op = op
        self.node = node
        self.dst_rank = dst_rank
        self.applied = False
        self.issue_snap: Optional[Dict[str, int]] = None
        self.apply_snap: Optional[Dict[str, int]] = None
        self.issue_time = 0.0


class HBAnalyzer:
    """Replays a protocol-event stream and reports violations."""

    def __init__(self, sync_cells: Optional[Set[Tuple[str, int]]] = None):
        #: Cells with release/acquire semantics (from the monitor).  Ranged
        #: accesses that overlap these cells (e.g. MCS pair atomics through
        #: ``write_many``) are given sync semantics per cell even though the
        #: event itself was emitted in plain/atomic mode.
        self._sync_cells = sync_cells or set()
        self._clocks: Dict[str, Dict[str, int]] = {}
        self._cells: Dict[Tuple[str, int], _CellState] = {}
        self._sync_writes: Dict[Tuple[str, int], Dict[str, int]] = {}
        self._ops: Dict[int, _OpRecord] = {}
        self._issued_to: Dict[Tuple[str, int], List[int]] = {}
        self._outstanding: Dict[str, Set[int]] = {}
        self._credit_applies: Dict[int, int] = {}
        self._op_done_bumps: Dict[int, int] = {}
        self._barrier_enters: Dict[int, Dict[str, Dict[str, int]]] = {}
        self._barrier_pending: Dict[int, Dict[str, List[int]]] = {}
        self._coll_enters: Dict[Tuple[str, int], Dict[str, Dict[str, int]]] = {}
        self._lock_holders: Dict[str, Set[str]] = {}
        self._lock_clock: Dict[str, Dict[str, int]] = {}
        self._lock_ticket: Dict[str, int] = {}
        self._lock_pending: Dict[Tuple[str, str], float] = {}
        # NIC-offload state (populated only by NIC-mode barriers).
        self._nic_doorbells: Dict[int, Dict[int, Dict[str, int]]] = {}
        self._nic_expected: Dict[int, int] = {}
        self._nic_frames: Dict[Tuple[int, str, int], Dict[str, int]] = {}
        self._op_done_clock: Dict[Tuple[int, int], Dict[str, int]] = {}
        self._nic_release_snap: Dict[Tuple[int, int], Dict[str, int]] = {}
        self._nic_commits: Dict[int, Dict[str, int]] = {}
        # Crash-stop state (populated only by membership-service events).
        self._dead_actors: Set[str] = set()
        self._crashed_at: Dict[str, float] = {}
        self._dead_nodes: Set[int] = set()
        # Barrier releases owing un-applied ops, judged at end of trace:
        # the issuer's crash is *declared* (and so enters the event
        # stream) only after a detection delay, so an exit that precedes
        # the declaration must not flag ops the crash wrote off.
        self._pending_release_viols: List[Tuple[float, int, str, int]] = []
        self._written_off_ops: Set[int] = set()
        self._lock_revoked: Dict[str, Set[int]] = {}
        self._view_epoch = 0
        # Partition state (populated only by transient-fault events).
        #: Actors currently excluded from the membership view.
        self._excluded_actors: Set[str] = set()
        #: actor -> [start, end] exclusion windows (end None while open):
        #: used to excuse barrier releases owing ops whose endpoint was
        #: out of the view at release time (the resilient barrier wrote
        #: them off; the suspended frames apply at the heal).
        self._excluded_spans: Dict[str, List[List[Optional[float]]]] = {}
        #: lock -> actors whose lease was revoked *live* (partition
        #: exclusion): any lock action by them before rejoin is the
        #: split-brain the fencing tokens exist to prevent.
        self._fenced_stale: Dict[str, Set[str]] = {}
        #: cell -> excluded actor that last wrote it from the minority
        #: side; a conflicting majority access makes the race split-brain.
        self._minority_cells: Dict[Tuple[str, int], str] = {}
        self.report = SanReport()

    # -- vector clock helpers ------------------------------------------------

    def _clock(self, actor: str) -> Dict[str, int]:
        clock = self._clocks.get(actor)
        if clock is None:
            clock = {actor: 0}
            self._clocks[actor] = clock
        return clock

    def _tick(self, actor: str) -> int:
        clock = self._clock(actor)
        clock[actor] = clock.get(actor, 0) + 1
        return clock[actor]

    def _join(self, actor: str, snapshot: Optional[Dict[str, int]]) -> None:
        if not snapshot:
            return
        clock = self._clock(actor)
        for key, tick in snapshot.items():
            if clock.get(key, 0) < tick:
                clock[key] = tick

    def _hb(self, src_actor: str, src_tick: int, dst_actor: str) -> bool:
        """Did (src_actor @ src_tick) happen before dst_actor's current point?"""
        if src_actor == dst_actor:
            return True
        return self._clock(dst_actor).get(src_actor, 0) >= src_tick

    # -- main entry ----------------------------------------------------------

    def analyze(self, events: Sequence[Any]) -> SanReport:
        for event in events:
            self._step(event)
        self._finish(events[-1].time if events else 0.0)
        self.report.events_analyzed = len(events)
        return self.report

    def _step(self, ev) -> None:
        actor, data, kind = ev.actor, ev.data, ev.kind
        tick = self._tick(actor)
        handler = getattr(self, f"_on_{kind}", None)
        if handler is not None:
            handler(ev, actor, tick, data)

    # -- memory accesses -----------------------------------------------------

    def _on_mem_read(self, ev, actor, tick, data) -> None:
        self._access(ev, actor, tick, data, is_write=False)

    def _on_mem_write(self, ev, actor, tick, data) -> None:
        self._access(ev, actor, tick, data, is_write=True)

    def _access(self, ev, actor, tick, data, is_write: bool) -> None:
        region, base, count, mode = (
            data["region"],
            data["addr"],
            data["n"],
            data["mode"],
        )
        for addr in range(base, base + count):
            key = (region, addr)
            if mode == "sync" or key in self._sync_cells:
                if is_write:
                    self._sync_writes[key] = dict(self._clock(actor))
                else:
                    self._join(actor, self._sync_writes.get(key))
                continue
            cell = self._cells.get(key)
            if cell is None:
                cell = _CellState()
                self._cells[key] = cell
            prev = cell.write
            if prev is not None:
                p_actor, p_tick, p_mode = prev
                both_atomic = p_mode == "atomic" and mode == "atomic"
                if (
                    p_actor != actor
                    and not both_atomic
                    and not self._hb(p_actor, p_tick, actor)
                ):
                    self._race(ev, key, actor, mode, p_actor, p_mode, is_write)
            if is_write:
                for r_actor, (r_tick, r_mode) in cell.reads.items():
                    both_atomic = r_mode == "atomic" and mode == "atomic"
                    if (
                        r_actor != actor
                        and not both_atomic
                        and not self._hb(r_actor, r_tick, actor)
                    ):
                        self._race(ev, key, actor, mode, r_actor, r_mode, True)
                cell.write = (actor, tick, mode)
                cell.reads.clear()
                if self._excluded_actors and actor in self._excluded_actors:
                    self._minority_cells[key] = actor
                elif self._minority_cells:
                    self._minority_cells.pop(key, None)
            else:
                cell.reads[actor] = (tick, mode)

    def _race(self, ev, key, actor, mode, other, other_mode, is_write) -> None:
        access = "write" if is_write else "read"
        # A race with one foot on the minority side of a partition (the
        # accessor is excluded right now, or the earlier write was made
        # from the minority and survived the heal) is split-brain, not a
        # garden-variety data race: quorum freezing should have made it
        # impossible.
        split_brain = (
            actor in self._excluded_actors
            or other in self._excluded_actors
            or self._minority_cells.get(key) == other
        )
        self.report.add(
            Violation(
                kind="split-brain" if split_brain else "data-race",
                time=ev.time,
                message=(
                    f"{actor} {access}s {key[0]}[{key[1]}] ({mode}) unordered "
                    f"with earlier access by {other} ({other_mode})"
                    + (" across a partition" if split_brain else "")
                ),
                details={"region": key[0], "addr": key[1], "actors": [other, actor]},
            )
        )

    # -- remote operation lifecycle ------------------------------------------

    def _on_issue(self, ev, actor, tick, data) -> None:
        record = _OpRecord(actor, data["op"], data["node"], data["dst_rank"])
        record.issue_snap = dict(self._clock(actor))
        record.issue_time = ev.time
        self._ops[data["op_id"]] = record
        self._issued_to.setdefault((actor, data["node"]), []).append(data["op_id"])
        self._outstanding.setdefault(actor, set()).add(data["op_id"])
        if data["node"] in self._dead_nodes:
            # Issued into a declared machine crash: the fabric drops it and
            # the degraded fence/barrier write it off.
            record.applied = True
            record.apply_snap = dict(self._clock(actor))
            self._written_off_ops.add(data["op_id"])
            self._outstanding[actor].discard(data["op_id"])

    def _on_apply(self, ev, actor, tick, data) -> None:
        record = self._ops.get(data["op_id"])
        if record is None:
            return
        self._join(actor, record.issue_snap)
        if record.op in CREDIT_OPS:
            # Charge the credit ledger at apply *start*: the server bumps
            # op_done from inside the handler, i.e. between this event and
            # apply_done.
            rank = record.dst_rank
            self._credit_applies[rank] = self._credit_applies.get(rank, 0) + 1

    def _on_apply_done(self, ev, actor, tick, data) -> None:
        record = self._ops.get(data["op_id"])
        if record is None:
            return
        record.applied = True
        record.apply_snap = dict(self._clock(actor))
        self._outstanding.get(record.actor, set()).discard(data["op_id"])
        # A straggler that lands after being written off was applied after
        # all: it no longer counts toward the dead-credit barrier check.
        self._written_off_ops.discard(data["op_id"])

    def _on_complete(self, ev, actor, tick, data) -> None:
        record = self._ops.get(data["op_id"])
        if record is not None:
            self._join(actor, record.apply_snap)

    # -- fence counting ------------------------------------------------------

    def _on_op_done(self, ev, actor, tick, data) -> None:
        rank = data["rank"]
        # Exact-value snapshot for the NIC mirror: a NIC observing mirror
        # value v joins the server's clock at the bump that produced v.
        self._op_done_clock[(rank, data["value"])] = dict(self._clock(actor))
        self._op_done_bumps[rank] = self._op_done_bumps.get(rank, 0) + 1
        if self._op_done_bumps[rank] > self._credit_applies.get(rank, 0):
            self.report.add(
                Violation(
                    kind="fence",
                    time=ev.time,
                    message=(
                        f"op_done credited for rank {rank} without a matching "
                        f"applied operation ({self._op_done_bumps[rank]} credits "
                        f"vs {self._credit_applies.get(rank, 0)} applies)"
                    ),
                    details={"rank": rank},
                )
            )

    def _on_fence_done(self, ev, actor, tick, data) -> None:
        covered = self._issued_to.pop((actor, data["node"]), [])
        degraded = bool(data.get("degraded"))
        for op_id in covered:
            record = self._ops[op_id]
            if not record.applied:
                if degraded:
                    # Degraded fence to a crashed machine: the write-off is
                    # explicit in the protocol, not a lost completion.
                    continue
                self.report.add(
                    Violation(
                        kind="fence",
                        time=ev.time,
                        message=(
                            f"fence by {actor} to node {data['node']} completed "
                            f"with un-applied {record.op} (op {op_id})"
                        ),
                        details={"op_id": op_id, "node": data["node"]},
                    )
                )
            else:
                self._join(actor, record.apply_snap)

    # -- barriers ------------------------------------------------------------

    def _on_barrier_enter(self, ev, actor, tick, data) -> None:
        epoch = data["epoch"]
        self._barrier_enters.setdefault(epoch, {})[actor] = dict(self._clock(actor))
        pending = sorted(self._outstanding.get(actor, ()))
        self._barrier_pending.setdefault(epoch, {})[actor] = pending

    def _on_barrier_exit(self, ev, actor, tick, data) -> None:
        epoch = data["epoch"]
        nic_epoch = data.get("nic_epoch")
        if nic_epoch is not None and actor.startswith("p"):
            # NIC-offloaded barrier: the host's release is the NIC's DMA
            # write-back; join the NIC clock at release so everything the
            # NIC observed (mirrored op_done bumps included) orders before
            # the host's post-barrier accesses.
            self._join(
                actor, self._nic_release_snap.get((nic_epoch, int(actor[1:])))
            )
        for snapshot in self._barrier_enters.get(epoch, {}).values():
            self._join(actor, snapshot)
        for issuer, op_ids in self._barrier_pending.get(epoch, {}).items():
            for op_id in op_ids:
                record = self._ops[op_id]
                if not record.applied:
                    # Deferred verdict: exonerated at end of trace if the
                    # issuer turns out to have crashed before this release
                    # (the declaration event arrives later in the stream,
                    # but the write-off is effective from the crash).
                    self._pending_release_viols.append(
                        (ev.time, epoch, actor, op_id)
                    )
                else:
                    self._join(actor, record.apply_snap)
        self._dead_credit_check(ev, actor, epoch, data)

    def _dead_credit_check(self, ev, actor, epoch, data) -> None:
        """Flag a barrier release still counting a dead rank's credits.

        Operations issued by (or into) crashed processes that the target
        server never applied must be *written off explicitly*: a resilient
        barrier reports the write-off in its exit event.  An exit that owes
        such credits without reporting at least that many written off means
        the barrier's accounting silently counted a dead rank's operations.
        """
        if not self._written_off_ops or not actor.startswith("p"):
            return
        me = int(actor[1:])
        owed = sum(
            1 for op_id in self._written_off_ops
            if self._ops[op_id].dst_rank == me
        )
        reported = data.get("written_off")
        if owed and (reported is None or reported < owed):
            self.report.add(
                Violation(
                    kind="barrier",
                    time=ev.time,
                    message=(
                        f"barrier epoch {epoch} released {actor} while still "
                        f"counting {owed} credit(s) from crashed rank(s) "
                        f"(written off: {reported if reported is not None else 0})"
                    ),
                    details={"epoch": epoch, "owed": owed, "reported": reported},
                )
            )

    # -- crash-stop membership events ------------------------------------------

    def _on_proc_crashed(self, ev, actor, tick, data) -> None:
        rank = data["rank"]
        dead_actor = f"p{rank}"
        self._dead_actors.add(dead_actor)
        self._crashed_at[dead_actor] = data.get("crashed_at", ev.time)
        if data.get("node_crashed"):
            self._dead_nodes.add(data["node"])
        # Write off the dead rank's in-flight operations — and, after a
        # machine crash, survivors' operations into the dead server — so
        # fence/barrier completion no longer owes them.  The write-off
        # joins the membership service's clock (declaration ordering).
        for op_id, record in self._ops.items():
            if record.applied:
                continue
            into_dead_node = (
                data.get("node_crashed") and record.node == data["node"]
            )
            if record.actor == dead_actor or into_dead_node:
                record.applied = True
                record.apply_snap = dict(self._clock(actor))
                self._written_off_ops.add(op_id)
                self._outstanding.get(record.actor, set()).discard(op_id)
        # A dead rank's pending lock requests cannot deadlock anyone.
        for pending_key in list(self._lock_pending):
            if pending_key[0] == dead_actor:
                del self._lock_pending[pending_key]

    def _on_view_change(self, ev, actor, tick, data) -> None:
        self._view_epoch = data["epoch"]

    def _on_proc_excluded(self, ev, actor, tick, data) -> None:
        excluded = f"p{data['rank']}"
        self._excluded_actors.add(excluded)
        self._excluded_spans.setdefault(excluded, []).append([ev.time, None])

    def _on_proc_rejoined(self, ev, actor, tick, data) -> None:
        rejoined = f"p{data['rank']}"
        self._excluded_actors.discard(rejoined)
        spans = self._excluded_spans.get(rejoined)
        if spans and spans[-1][1] is None:
            spans[-1][1] = ev.time
        for stale in self._fenced_stale.values():
            stale.discard(rejoined)
        if not data.get("resynced", True):
            self.report.add(
                Violation(
                    kind="split-brain",
                    time=ev.time,
                    message=(
                        f"{rejoined} rejoined the view (epoch "
                        f"{data.get('epoch')}) without state "
                        f"resynchronization: stale tokens and credit "
                        f"baselines survive the heal"
                    ),
                    details={"rank": data["rank"], "epoch": data.get("epoch")},
                )
            )

    def _on_lock_fence_rejected(self, ev, actor, tick, data) -> None:
        # The fencing token did its job: the stale holder's release was
        # rejected without touching the protocol.  Nothing stale survives.
        stale = self._fenced_stale.get(data["lock"])
        if stale is not None:
            stale.discard(actor)

    def _on_lease_revoked(self, ev, actor, tick, data) -> None:
        lock = data["lock"]
        ticket = data.get("ticket")
        if ticket is not None:
            self._lock_revoked.setdefault(lock, set()).add(ticket)
        rank = data.get("rank")
        if rank is None:
            return
        dead_actor = f"p{rank}"
        holders = self._lock_holders.setdefault(lock, set())
        if dead_actor in holders:
            # Revocation is the crash-time release: the successor's grant
            # joins the membership service's clock at revocation.
            holders.discard(dead_actor)
            self._lock_clock[lock] = dict(self._clock(actor))
        if data.get("live"):
            # Live (partition) revocation: the holder is alive on the
            # minority side and still believes it holds the lock.  Any
            # protocol action it takes on this lock before rejoining is
            # split-brain (see _on_lock_acq/_on_lock_rel).
            self._fenced_stale.setdefault(lock, set()).add(dead_actor)
        self._lock_pending.pop((dead_actor, lock), None)

    # -- message-passing collectives -----------------------------------------

    def _on_coll_enter(self, ev, actor, tick, data) -> None:
        key = (data["coll"], data["epoch"])
        self._coll_enters.setdefault(key, {})[actor] = dict(self._clock(actor))

    def _on_coll_exit(self, ev, actor, tick, data) -> None:
        key = (data["coll"], data["epoch"])
        for snapshot in self._coll_enters.get(key, {}).values():
            self._join(actor, snapshot)

    # -- NIC-offloaded barrier -----------------------------------------------

    def _on_nic_doorbell(self, ev, actor, tick, data) -> None:
        epoch = data["epoch"]
        self._nic_doorbells.setdefault(epoch, {})[data["rank"]] = dict(
            self._clock(actor)
        )
        self._nic_expected[epoch] = data["n"]

    def _on_nic_combine(self, ev, actor, tick, data) -> None:
        epoch, src = data["epoch"], data["src"]
        if src == "doorbell":
            # The NIC folded a hosted rank's doorbell row.
            self._join(
                actor, self._nic_doorbells.get(epoch, {}).get(data["rank"])
            )
        elif src == "send":
            # Frame injection: snapshot the sender NIC's clock; the
            # receiving NIC joins it.  Emission order is observation
            # order, so the snapshot exists before the matching recv.
            key = (epoch, data["phase"], data["node"])
            self._nic_frames[key] = dict(self._clock(actor))
        elif src == "recv":
            key = (epoch, data["phase"], data["peer"])
            self._join(actor, self._nic_frames.get(key))
        elif src == "mirror":
            # Stage 2 satisfied against the op_done mirror: join the
            # server's clock at the exact bump the mirror carries.
            self._join(
                actor, self._op_done_clock.get((data["rank"], data["value"]))
            )

    def _on_nic_commit(self, ev, actor, tick, data) -> None:
        # An engine finished stage 3: its clock dominates every doorbell.
        # Recorded as the evidence that sanctions *forced* releases — when
        # membership recovery completes a committed epoch on behalf of an
        # engine wedged (or killed) mid-stage-3 by a crashed peer NIC.
        self._nic_commits[data["epoch"]] = dict(self._clock(actor))

    def _on_nic_release(self, ev, actor, tick, data) -> None:
        epoch, rank = data["epoch"], data["rank"]
        if data.get("forced"):
            # Recovery path: inherit the committing engine's clock so the
            # dominance check below holds exactly when the epoch really
            # committed somewhere — a forced release without commitment
            # evidence still flags as early.
            self._join(actor, self._nic_commits.get(epoch))
        clock = self._clock(actor)
        self._nic_release_snap[(epoch, rank)] = dict(clock)
        # No early release: the NIC may only write the completion back
        # after its clock dominates every participating rank's doorbell —
        # i.e. every op_init row of the epoch flowed into the totals this
        # release is based on.
        doorbells = self._nic_doorbells.get(epoch, {})
        for peer in range(self._nic_expected.get(epoch, data.get("n", 0))):
            snap = doorbells.get(peer)
            if snap is None or any(
                clock.get(k, 0) < t for k, t in snap.items()
            ):
                self.report.add(
                    Violation(
                        kind="barrier",
                        time=ev.time,
                        message=(
                            f"nic early release: epoch {epoch} release of "
                            f"rank {rank} on {actor} does not happen-after "
                            f"rank {peer}'s doorbell"
                        ),
                        details={"epoch": epoch, "rank": rank, "peer": peer},
                    )
                )

    # -- locks ---------------------------------------------------------------

    def _on_lock_req(self, ev, actor, tick, data) -> None:
        self._lock_pending[(actor, data["lock"])] = ev.time

    def _on_lock_acq(self, ev, actor, tick, data) -> None:
        lock = data["lock"]
        self._lock_pending.pop((actor, lock), None)
        if actor in self._fenced_stale.get(lock, ()):
            self.report.add(
                Violation(
                    kind="split-brain",
                    time=ev.time,
                    message=(
                        f"{actor} re-granted lock {lock} on a fenced "
                        f"(partition-revoked) lease: two sides of the "
                        f"partition hold the lock"
                    ),
                    details={"lock": lock, "actor": actor},
                )
            )
        if actor in self._dead_actors:
            self.report.add(
                Violation(
                    kind="lock",
                    time=ev.time,
                    message=(
                        f"lock {lock} granted to {actor} after it was "
                        f"declared crashed (view epoch {self._view_epoch})"
                    ),
                    details={"lock": lock, "actor": actor},
                )
            )
        holders = self._lock_holders.setdefault(lock, set())
        if holders:
            self.report.add(
                Violation(
                    kind="lock",
                    time=ev.time,
                    message=(
                        f"{actor} granted lock {lock} while held by "
                        f"{', '.join(sorted(holders))}"
                    ),
                    details={"lock": lock, "holders": sorted(holders)},
                )
            )
        holders.add(actor)
        ticket = data.get("ticket")
        if ticket is not None:
            expected = self._lock_ticket.get(lock, -1) + 1
            revoked = self._lock_revoked.get(lock, ())
            while expected in revoked:
                # Crash recovery spliced this ticket out of the queue.
                expected += 1
            if ticket != expected:
                self.report.add(
                    Violation(
                        kind="lock",
                        time=ev.time,
                        message=(
                            f"non-FIFO grant on lock {lock}: ticket {ticket} "
                            f"granted, expected {expected}"
                        ),
                        details={"lock": lock, "ticket": ticket},
                    )
                )
            self._lock_ticket[lock] = max(self._lock_ticket.get(lock, -1), ticket)
        self._join(actor, self._lock_clock.get(lock))

    def _on_lock_rel(self, ev, actor, tick, data) -> None:
        lock = data["lock"]
        holders = self._lock_holders.setdefault(lock, set())
        if actor in self._fenced_stale.get(lock, ()):
            self.report.add(
                Violation(
                    kind="split-brain",
                    time=ev.time,
                    message=(
                        f"{actor} released lock {lock} on a fenced "
                        f"(partition-revoked) lease: the fencing-token "
                        f"check should have rejected this release"
                    ),
                    details={"lock": lock, "actor": actor},
                )
            )
            self._fenced_stale[lock].discard(actor)
            return
        if actor not in holders:
            self.report.add(
                Violation(
                    kind="lock",
                    time=ev.time,
                    message=f"{actor} released lock {lock} without holding it",
                    details={"lock": lock},
                )
            )
        holders.discard(actor)
        self._lock_clock[lock] = dict(self._clock(actor))

    # -- end-of-trace checks -------------------------------------------------

    def _excluded_while_in_flight(
        self, actor_name: str, issued: float, released: float
    ) -> bool:
        """Did ``actor_name``'s view exclusion overlap ``[issued, released]``?"""
        for start, end in self._excluded_spans.get(actor_name, ()):
            if start <= released and (end is None or issued < end):
                return True
        return False

    def _finish(self, end_time: float) -> None:
        for exit_time, epoch, actor, op_id in self._pending_release_viols:
            record = self._ops[op_id]
            crashed_at = self._crashed_at.get(record.actor)
            if crashed_at is not None and crashed_at <= exit_time:
                # The issuer was already dead at release: its un-applied
                # operations are written off by crash recovery, so owing
                # them is the documented degraded-barrier semantics (a
                # straggler landing even later stays monotone).
                continue
            dst_crashed_at = self._crashed_at.get(f"p{record.dst_rank}")
            if dst_crashed_at is not None and dst_crashed_at <= exit_time:
                # The *destination* was already dead at release: the DMA
                # can never be applied, and the runtime fence explicitly
                # excuses dead destinations (``membership.node_dead``)
                # with recovery writing the operation off.  Found by
                # RMCheck schedule exploration: the default schedule
                # always applied or dropped such puts before the crash
                # declaration, so the fuzzer never saw this path.
                continue
            if self._excluded_while_in_flight(
                f"p{record.dst_rank}", record.issue_time, exit_time
            ) or self._excluded_while_in_flight(
                record.actor, record.issue_time, exit_time
            ):
                # One endpoint sat on the minority side of a partition
                # while the operation was in flight: the resilient barrier
                # wrote it off (quorum semantics) and the suspended frame
                # applies at the heal — the straggler rule keeps that
                # monotone.  (Covers a just-rejoined rank releasing its
                # adopted barrier instance while its own flushed puts are
                # still in transit.)
                continue
            self.report.add(
                Violation(
                    kind="barrier",
                    time=exit_time,
                    message=(
                        f"barrier epoch {epoch} released {actor} while "
                        f"{record.actor}'s {record.op} (op {op_id}) to rank "
                        f"{record.dst_rank} is still un-applied"
                    ),
                    details={"epoch": epoch, "op_id": op_id},
                )
            )
        for rank in sorted(set(self._credit_applies) | set(self._op_done_bumps)):
            applies = self._credit_applies.get(rank, 0)
            bumps = self._op_done_bumps.get(rank, 0)
            if bumps < applies:
                self.report.add(
                    Violation(
                        kind="fence",
                        time=end_time,
                        message=(
                            f"dropped op_done credit for rank {rank}: "
                            f"{applies} applied store-class ops but only "
                            f"{bumps} credits"
                        ),
                        details={"rank": rank},
                    )
                )
        self._deadlock_check(end_time)

    def _deadlock_check(self, end_time: float) -> None:
        # Wait-for graph: a waiter points at every current holder of the
        # lock it is still pending on at end of trace.
        edges: Dict[str, Set[str]] = {}
        for (actor, lock), _when in self._lock_pending.items():
            for holder in self._lock_holders.get(lock, ()):  # may be empty
                if holder != actor:
                    edges.setdefault(actor, set()).add(holder)
        seen: Set[str] = set()
        for start in edges:
            if start in seen:
                continue
            path: List[str] = []
            on_path: Set[str] = set()

            def visit(node: str) -> Optional[List[str]]:
                if node in on_path:
                    return path[path.index(node):] + [node]
                if node in seen:
                    return None
                seen.add(node)
                path.append(node)
                on_path.add(node)
                for nxt in edges.get(node, ()):  # DFS
                    cycle = visit(nxt)
                    if cycle is not None:
                        return cycle
                path.pop()
                on_path.discard(node)
                return None

            cycle = visit(start)
            if cycle is not None:
                self.report.add(
                    Violation(
                        kind="deadlock",
                        time=end_time,
                        message=(
                            "lock wait-for cycle: " + " -> ".join(cycle)
                        ),
                        details={"cycle": cycle},
                    )
                )
                return
