"""Static protocol-shape analysis (the RMCheck companion linter).

Where :mod:`repro.analysis.lint` targets simulator-contract hazards,
these four rules target *protocol-shape* hazards: structural mistakes in
message-passing code that produce schedules the dynamic checkers only
catch if the fuzzer or model checker happens to drive the run into them.
Shape analysis flags them on every run of ``repro check --lint``.

``send-unhandled-kind``
    Token-lock daemons dispatch on string message kinds
    (``msg.kind == "request"`` elif-chains).  A ``self._send(dst, "kindo")``
    whose kind literal is never compared against ``.kind`` anywhere in the
    linted set is a message no handler will ever match — it falls through
    to the daemon's ``unknown message`` arm at runtime, but only on the
    schedule that delivers it.  Kind collection is a whole-package
    pre-pass (like the generator-name pre-pass in :mod:`.lint`).

``cs-yield-no-lease``
    A daemon that sets a critical-section flag (``self.in_cs = True``)
    and then yields has windows where the lock holder is suspended while
    membership can change under it.  Such a class must have a lease/view
    recovery path: a ``view_change`` message arm or an
    ``_apply_view_change`` method.  Without one, a crash during the
    critical section strands the token forever.

``credit-mutation``
    The GM-style send-credit machinery is the flow-control ground truth.
    The raw pool state (``_credits`` / ``_credit_pool``) may only be
    touched by its home module ``armci/api.py``; the instrumented
    take/return helpers may additionally be *called* from
    ``armci/nonblocking.py`` (the split-phase paths).  Any other
    reference can unbalance the pool and deadlock senders.

``unguarded-view-read``
    A message handler (a function dispatching on ``.kind``) that reads a
    membership view (``node_dead``, ``written_off``, ``alive_ranks``,
    ...) races with view changes: the message may predate the view it is
    judged against.  Handlers that consult views must also reference an
    epoch guard (``_view_epoch`` / ``epoch`` / ``_token_epoch_floor``)
    so stale messages are fenced, as the token locks do.

All rules operate on source text only — nothing is imported or executed.
Findings are plain ``(path, line, rule, message)`` tuples; the
:mod:`.lint` front end wraps them into :class:`~repro.analysis.lint.LintFinding`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

__all__ = [
    "RULE_SEND_KIND",
    "RULE_CS_LEASE",
    "RULE_CREDIT",
    "RULE_VIEW_READ",
    "collect_handled_kinds",
    "check_tree",
]

RULE_SEND_KIND = "send-unhandled-kind"
RULE_CS_LEASE = "cs-yield-no-lease"
RULE_CREDIT = "credit-mutation"
RULE_VIEW_READ = "unguarded-view-read"

#: Raw credit-pool state: only the home module may reference it.
_CREDIT_RAW = {"_credits", "_credit_pool"}
_CREDIT_RAW_HOME = ("armci/api.py",)

#: Instrumented setters: callable from the home module and the
#: split-phase (nonblocking) paths, nowhere else.
_CREDIT_HELPERS = {"_take_credit", "_return_credit"}
_CREDIT_HELPER_HOMES = ("armci/api.py", "armci/nonblocking.py")

#: Membership-view accessors whose result can be stale inside a handler.
_VIEW_READS = {
    "node_dead",
    "written_off",
    "alive_ranks",
    "dead_nodes",
    "dead_ranks",
    "survivors",
}

#: Referencing any of these counts as an epoch guard.
_EPOCH_GUARDS = {"epoch", "view_epoch", "_view_epoch", "_token_epoch_floor"}

RawFinding = Tuple[str, int, str, str]


# -- handled-kind pre-pass ---------------------------------------------------


def _string_consts(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: List[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
        return out
    return []


def collect_handled_kinds(trees: Iterable[ast.AST]) -> Set[str]:
    """Every string literal compared against a ``.kind`` attribute.

    Covers ``x.kind == "req"``, ``"req" == x.kind`` and
    ``x.kind in ("req", "tok")`` across all the trees — the dispatch
    idioms the protocol daemons use.
    """
    kinds: Set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            if not any(
                isinstance(s, ast.Attribute) and s.attr == "kind" for s in sides
            ):
                continue
            for side in sides:
                kinds.update(_string_consts(side))
    return kinds


# -- per-function helpers ----------------------------------------------------


def _own_body(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's own body, excluding nested function scopes."""
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dispatches_on_kind(fn: ast.AST) -> bool:
    for node in _own_body(fn):
        if isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            if any(isinstance(s, ast.Attribute) and s.attr == "kind" for s in sides):
                return True
    return False


def _sets_in_cs(fn: ast.AST) -> Optional[ast.AST]:
    """The first ``self.in_cs = True`` assignment in the function, if any."""
    for node in _own_body(fn):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Attribute) and t.attr == "in_cs" for t in node.targets
        ):
            continue
        if isinstance(node.value, ast.Constant) and node.value.value is True:
            return node
    return None


def _yields(fn: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in _own_body(fn)
    )


def _class_has_lease_recovery(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, ast.FunctionDef) and node.name == "_apply_view_change":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "_apply_view_change":
            return True
        if isinstance(node, ast.Constant) and node.value == "view_change":
            return True
    return False


# -- the checker -------------------------------------------------------------


class _ShapeChecker(ast.NodeVisitor):
    def __init__(self, path: str, handled_kinds: Set[str]):
        self.path = path
        self.handled_kinds = handled_kinds
        self.findings: List[RawFinding] = []
        norm = path.replace("\\", "/")
        self.credit_raw_home = any(norm.endswith(s) for s in _CREDIT_RAW_HOME)
        self.credit_helper_home = any(
            norm.endswith(s) for s in _CREDIT_HELPER_HOMES
        )

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            (self.path, getattr(node, "lineno", 0), rule, message)
        )

    # send-unhandled-kind: literal kind in a _send() call nobody dispatches on.
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "_send" and len(node.args) >= 2:
            kind_arg = node.args[1]
            if isinstance(kind_arg, ast.Constant) and isinstance(
                kind_arg.value, str
            ):
                kind = kind_arg.value
                if kind not in self.handled_kinds:
                    self._add(
                        node,
                        RULE_SEND_KIND,
                        f"_send(..., {kind!r}) has no matching handler: no "
                        f"dispatch compares .kind against {kind!r}",
                    )
        self.generic_visit(node)

    # credit-mutation: raw pool / helper references outside their homes.
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _CREDIT_RAW and not self.credit_raw_home:
            self._add(
                node,
                RULE_CREDIT,
                f"reference to {node.attr} outside armci/api.py; only the "
                "instrumented credit setters may touch the pool state",
            )
        elif node.attr in _CREDIT_HELPERS and not self.credit_helper_home:
            self._add(
                node,
                RULE_CREDIT,
                f"call to {node.attr} outside the armci credit paths can "
                "unbalance the send-credit pool",
            )
        self.generic_visit(node)

    # cs-yield-no-lease: yielding daemon holds in_cs, class has no recovery.
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        recovered = _class_has_lease_recovery(node)
        if not recovered:
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                assign = _sets_in_cs(item)
                if assign is not None and _yields(item):
                    self._add(
                        assign,
                        RULE_CS_LEASE,
                        f"{node.name}.{item.name} enters a critical section "
                        "and yields, but the class has no view-change/lease "
                        "recovery path (_apply_view_change or a "
                        "'view_change' handler)",
                    )
        self.generic_visit(node)

    # unguarded-view-read: kind-dispatching handler reads membership views
    # without any epoch reference.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if _dispatches_on_kind(node):
            reads = [
                n
                for n in _own_body(node)
                if isinstance(n, ast.Attribute) and n.attr in _VIEW_READS
            ]
            if reads:
                guarded = any(
                    (isinstance(n, ast.Attribute) and n.attr in _EPOCH_GUARDS)
                    or (isinstance(n, ast.Name) and n.id in _EPOCH_GUARDS)
                    for n in _own_body(node)
                )
                if not guarded:
                    for read in reads:
                        self._add(
                            read,
                            RULE_VIEW_READ,
                            f"handler {node.name} reads membership view "
                            f".{read.attr} without an epoch guard; stale "
                            "messages can be judged against the wrong view",
                        )
        self.generic_visit(node)


# -- entry point -------------------------------------------------------------


def check_tree(
    path: str, tree: ast.AST, handled_kinds: Set[str]
) -> List[RawFinding]:
    """Run the four shape rules over one parsed module."""
    checker = _ShapeChecker(path, handled_kinds)
    checker.visit(tree)
    return checker.findings
