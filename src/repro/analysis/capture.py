"""Ambient trace capture for the ``--trace-out`` CLI option.

Experiments build their own :class:`~repro.runtime.cluster.ClusterRuntime`
instances deep inside the harness, so the CLI cannot thread a monitor
through every call path.  Instead it *enables* capture here before
dispatching the experiment; every runtime constructed while capture is
enabled attaches a fresh :class:`~repro.analysis.monitor.SyncMonitor`, and
the CLI flushes all collected events to one JSONL file afterwards.

Capture is process-global and intended for the CLI only; tests and the
sanitizer pass monitors explicitly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .monitor import SyncMonitor

__all__ = ["enable", "disable", "enabled", "attach", "flush"]

_path: Optional[str] = None
_captures: List[Tuple[int, SyncMonitor]] = []


def enable(path: str) -> None:
    """Start capturing: truncate ``path`` and attach to future runtimes."""
    global _path
    _path = path
    _captures.clear()
    with open(path, "w", encoding="utf-8"):
        pass


def disable() -> None:
    global _path
    _path = None
    _captures.clear()


def enabled() -> bool:
    return _path is not None


def attach(env) -> Optional[SyncMonitor]:
    """Install a monitor on ``env`` if capture is enabled (else ``None``).

    Called by :class:`~repro.runtime.cluster.ClusterRuntime` during wiring.
    """
    if _path is None:
        return None
    monitor = SyncMonitor().install(env)
    _captures.append((len(_captures) + 1, monitor))
    return monitor


def flush() -> Optional[Tuple[str, int, int]]:
    """Write all captured runs to the enabled path and disable capture.

    Returns ``(path, runs, events)`` or ``None`` if capture was off.
    """
    global _path
    if _path is None:
        return None
    path = _path
    total = 0
    for run_no, monitor in _captures:
        total += monitor.tracer.dump_jsonl(
            path, header={"run": run_no, "events": len(monitor.events)}
        )
    runs = len(_captures)
    disable()
    return (path, runs, total)
