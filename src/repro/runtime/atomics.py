"""Atomic memory operations on :class:`~repro.runtime.memory.Region` cells.

These are the state-transition halves of ARMCI's read-modify-write
operations.  In the simulation, an event callback runs without preemption,
so each function below is naturally atomic; *time* is charged by the caller
(``shm_atomic_us`` when a user process operates on same-node memory
directly, or the server's dispatch cost when executed remotely).

The paper adds two things to ARMCI's stock integer/long atomics, both
implemented here:

* operations on **pairs of longs** (two consecutive cells updated
  atomically), so that ``(rank, address)`` global pointers can be swapped —
  needed by the MCS queuing lock's ``Lock`` tail pointer;
* an atomic **compare&swap**, which stock ARMCI lacked (§3.2.2).
"""

from __future__ import annotations

import functools
from typing import Any, Tuple

from .memory import Region

__all__ = [
    "fetch_and_add",
    "swap",
    "compare_and_swap",
    "read_pair",
    "write_pair",
    "swap_pair",
    "compare_and_swap_pair",
    "accumulate",
]

Pair = Tuple[Any, Any]


def _atomic_op(fn):
    """Tag the accesses of an atomic operation for the RMCSan monitor.

    Two atomic operations on the same cell never race with each other (the
    event callback runs without preemption); the monitor's ``atomic`` scope
    records that so the happens-before engine exempts atomic/atomic pairs.
    """

    @functools.wraps(fn)
    def wrapper(region: Region, *args: Any, **kwargs: Any):
        monitor = region._monitor
        if monitor is None:
            return fn(region, *args, **kwargs)
        with monitor.atomic():
            return fn(region, *args, **kwargs)

    return wrapper


@_atomic_op
def fetch_and_add(region: Region, addr: int, increment: int = 1) -> int:
    """Atomically add ``increment`` to the cell; returns the *old* value."""
    old = region.read(addr)
    region.write(addr, old + increment)
    return old


@_atomic_op
def swap(region: Region, addr: int, new: Any) -> Any:
    """Atomically replace the cell with ``new``; returns the old value."""
    old = region.read(addr)
    region.write(addr, new)
    return old


@_atomic_op
def compare_and_swap(region: Region, addr: int, expected: Any, new: Any) -> bool:
    """Atomically set the cell to ``new`` iff it equals ``expected``.

    Returns True on success.  (This is the operation the paper had to add
    to ARMCI.)
    """
    old = region.read(addr)
    if old == expected:
        region.write(addr, new)
        return True
    return False


@_atomic_op
def read_pair(region: Region, addr: int) -> Pair:
    """Atomically read two consecutive cells."""
    return (region.read(addr), region.read(addr + 1))


@_atomic_op
def write_pair(region: Region, addr: int, pair: Pair) -> None:
    """Atomically write two consecutive cells."""
    first, second = pair
    region.write(addr, first)
    region.write(addr + 1, second)


@_atomic_op
def swap_pair(region: Region, addr: int, new: Pair) -> Pair:
    """Atomic swap on a pair of longs; returns the old pair."""
    old = read_pair(region, addr)
    write_pair(region, addr, new)
    return old


@_atomic_op
def compare_and_swap_pair(
    region: Region, addr: int, expected: Pair, new: Pair
) -> bool:
    """Atomic compare&swap on a pair of longs; True on success."""
    old = read_pair(region, addr)
    if old == tuple(expected):
        write_pair(region, addr, new)
        return True
    return False


@_atomic_op
def accumulate(region: Region, addr: int, values, scale: Any = 1) -> None:
    """ARMCI accumulate: ``mem[addr+i] += scale * values[i]`` atomically."""
    for offset, value in enumerate(values):
        old = region.read(addr + offset)
        region.write(addr + offset, old + scale * value)
