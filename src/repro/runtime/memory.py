"""Simulated process memory regions with global addressing.

ARMCI references remote memory with a tuple of the remote process id and a
virtual address at that process (paper §3.2.2); :class:`GlobalAddress` is
exactly that tuple.  Each user process owns a :class:`Region`; the region is
*shared* with the server thread on the owner's node and with the other user
processes on that node, so those parties may read/write it directly (the
simulation charges them shared-memory costs; remote parties must go through
the server).

Regions support **write watchers**: a process that polls a memory word (a
ticket-lock counter, an MCS ``locked`` flag, the server's ``op_done``
counter) registers interest in an address and is woken on writes.  This
models spin-polling without simulating every poll iteration; the configured
``poll_detect_us`` delay is charged by the waiter after the write that
satisfies it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

from ..sim.core import Environment
from ..sim.primitives import Broadcast

__all__ = ["GlobalAddress", "Region", "NULL_PTR"]


class GlobalAddress(NamedTuple):
    """ARMCI global pointer: (owning process rank, address in its region)."""

    rank: int
    addr: int

    def __repr__(self) -> str:  # keep test output compact
        return f"GA({self.rank},{self.addr})"


#: The encoding of a NULL global pointer as a pair of longs.  ARMCI's added
#: pair atomics operate on two long words; NULL is (-1, -1).
NULL_PTR = (-1, -1)


class Region:
    """A process's registered memory: a growable array of 8-byte cells.

    State changes are instantaneous (the simulation charges access *time* to
    whoever performs the access); the region only tracks values and wakes
    watchers.
    """

    #: Bytes per cell (everything is a long/double slot, as in ARMCI's
    #: integer/long atomics).
    CELL_BYTES = 8

    def __init__(self, env: Environment, owner_rank: int, name: Optional[str] = None):
        self.env = env
        self.owner_rank = owner_rank
        self.name = name or f"region[{owner_rank}]"
        self._cells: List[Any] = []
        self._watchers: Dict[int, Broadcast] = {}
        self._named: Dict[str, int] = {}
        #: Count of individual cell writes (diagnostics / tests).
        self.writes = 0
        self.reads = 0
        #: RMCSan monitor, when one was installed on the environment before
        #: this region was built (see repro.analysis.monitor); None keeps
        #: every access on the uninstrumented fast path.
        self._monitor = getattr(env, "_sync_monitor", None)

    def __repr__(self) -> str:
        return f"<Region {self.name} cells={len(self._cells)}>"

    def __len__(self) -> int:
        return len(self._cells)

    # -- allocation ----------------------------------------------------------

    def alloc(self, count: int, initial: Any = 0) -> int:
        """Bump-allocate ``count`` cells, returning the base address."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        base = len(self._cells)
        self._cells.extend([initial] * count)
        return base

    def alloc_named(self, key: str, count: int, initial: Any = 0) -> int:
        """Allocate once under a stable name; later calls return the same base.

        SPMD code constructs shared objects (locks, global arrays) on every
        rank; the first constructor to touch a region allocates, the others
        resolve to the same cells — the moral equivalent of a collective
        ``ARMCI_Malloc`` without requiring construction-order coordination.
        """
        base = self._named.get(key)
        if base is None:
            base = self.alloc(count, initial)
            self._named[key] = base
        return base

    def _check(self, addr: int) -> None:
        if not (0 <= addr < len(self._cells)):
            raise IndexError(
                f"address {addr} out of range [0, {len(self._cells)}) in {self.name}"
            )

    # -- access --------------------------------------------------------------

    def read(self, addr: int) -> Any:
        self._check(addr)
        self.reads += 1
        if self._monitor is not None:
            self._monitor.on_read(self, addr)
        return self._cells[addr]

    def write(self, addr: int, value: Any) -> None:
        self._check(addr)
        self._cells[addr] = value
        self.writes += 1
        if self._monitor is not None:
            self._monitor.on_write(self, addr)
        watcher = self._watchers.get(addr)
        if watcher is not None and watcher.waiting:
            watcher.fire(value)

    def read_many(self, addr: int, count: int) -> List[Any]:
        if count < 0:
            raise ValueError("count must be >= 0")
        if addr < 0 or addr + max(count, 1) > len(self._cells):
            self._check(addr)
            if count:
                self._check(addr + count - 1)
        self.reads += count
        if self._monitor is not None and count:
            self._monitor.on_read(self, addr, count)
        return self._cells[addr : addr + count]

    def write_many(self, addr: int, values: Sequence[Any]) -> None:
        if not values:
            return
        n = len(values)
        if addr < 0 or addr + n > len(self._cells):
            self._check(addr)
            self._check(addr + n - 1)
        if self._monitor is not None:
            # One ranged event; the per-cell writes below stay silent.
            self._monitor.on_write(self, addr, n)
            with self._monitor.bulk():
                for offset, value in enumerate(values):
                    self.write(addr + offset, value)
            return
        # Bulk fast path: one slice assignment instead of n write() calls,
        # then watcher wake-ups in the same ascending-address order the
        # per-cell loop produced (so schedule sequence numbers — and thus
        # simulated results — are byte-identical).
        self._cells[addr : addr + n] = values
        self.writes += n
        watchers = self._watchers
        if watchers:
            end = addr + n
            if len(watchers) < n:
                watched = sorted(a for a in watchers if addr <= a < end)
            else:
                watched = range(addr, end)
            for a in watched:
                watcher = watchers.get(a)
                if watcher is not None and watcher.waiting:
                    watcher.fire(values[a - addr])

    # -- polling -------------------------------------------------------------

    def watcher(self, addr: int) -> Broadcast:
        """The (lazily created) broadcast fired on writes to ``addr``."""
        self._check(addr)
        watcher = self._watchers.get(addr)
        if watcher is None:
            watcher = Broadcast(self.env, name=f"{self.name}@{addr}")
            self._watchers[addr] = watcher
        return watcher

    def wait_until(
        self,
        addr: int,
        predicate: Callable[[Any], bool],
        poll_detect_us: float = 0.0,
    ):
        """Sub-generator: spin until ``predicate(cells[addr])`` holds.

        Models a polling loop: if the value already satisfies the predicate,
        returns immediately; otherwise sleeps until a write to the address,
        charges ``poll_detect_us`` (the poll-loop reaction time), and
        re-checks.  Returns the observed value.
        """
        value = self._cells[self._index_checked(addr)]
        while not predicate(value):
            yield self.watcher(addr).wait()
            if poll_detect_us > 0.0:
                yield self.env.timeout(poll_detect_us)
            value = self._cells[addr]
        if self._monitor is not None:
            # The satisfying poll-loop read (bypasses read() and its
            # diagnostic counter, so the event is emitted here directly).
            self._monitor.on_read(self, addr)
        return value

    def _index_checked(self, addr: int) -> int:
        self._check(addr)
        return addr
