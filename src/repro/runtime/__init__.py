"""Cluster runtime substrate: memory regions, atomics, server threads.

Note: import :mod:`repro.runtime.cluster` (or :class:`repro.ClusterRuntime`)
for the fully wired system; this package root stays lightweight to keep the
``armci`` <-> ``runtime`` import graph acyclic.
"""

from . import atomics
from .memory import NULL_PTR, GlobalAddress, Region

__all__ = ["GlobalAddress", "NULL_PTR", "Region", "atomics"]
