"""Per-process execution context handed to SPMD program functions.

A simulated ARMCI program is a generator function ``main(ctx, *args)``; the
:class:`ProcessContext` gives it everything a rank sees: its rank, its
memory region, the ARMCI client, the message-passing communicator, and the
simulation clock.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from ..runtime.memory import GlobalAddress, Region
from ..sim.core import Environment
from ..sim.trace import Stopwatch

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.api import Armci
    from ..mp.comm import Comm
    from .cluster import ClusterRuntime

__all__ = ["ProcessContext"]


class ProcessContext:
    """Everything one simulated user process can touch."""

    def __init__(self, runtime: "ClusterRuntime", rank: int):
        self.runtime = runtime
        self.rank = rank
        self.env: Environment = runtime.env
        self.nprocs: int = runtime.topology.nprocs
        self.topology = runtime.topology
        self.params = runtime.params
        self.fabric = runtime.fabric
        self.node: int = runtime.topology.node_of(rank)
        self.region: Region = runtime.regions[rank]
        self.regions = runtime.regions
        self.server = runtime.servers[self.node]
        self.comm: "Comm" = runtime.comms[rank]
        self.armci: "Armci" = runtime.armcis[rank]
        #: Crash-stop membership service (None on a fault-free runtime).
        self.membership = getattr(runtime, "membership", None)

    def __repr__(self) -> str:
        return f"<ProcessContext rank={self.rank}/{self.nprocs} node={self.node}>"

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self.env.now

    def compute(self, us: float):
        """Event modeling ``us`` microseconds of local computation."""
        return self.env.timeout(us)

    def stopwatch(self, name: str = "sw") -> Stopwatch:
        """A fresh virtual-time stopwatch."""
        return Stopwatch(self.env, name=f"r{self.rank}:{name}")

    def ga(self, rank: int, addr: int) -> GlobalAddress:
        """Build a global address (convenience)."""
        return GlobalAddress(rank, addr)
