"""Cluster runtime: wires the fabric, regions, servers, and client APIs.

:class:`ClusterRuntime` assembles a complete simulated system — the
client-server ARMCI architecture of paper Figure 1 — and runs SPMD
programs on it.  A program is a generator function ``main(ctx, *args)``
receiving a :class:`~repro.runtime.context.ProcessContext`.

Typical use::

    def main(ctx):
        addr = ctx.region.alloc(1, initial=0)
        yield from ctx.armci.put(ctx.ga((ctx.rank + 1) % ctx.nprocs, addr), [ctx.rank])
        yield from ctx.armci.barrier()
        return ctx.region.read(addr)

    results = ClusterRuntime(nprocs=4).run_spmd(main)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..armci.api import Armci
from ..mp.comm import Comm
from ..net.fabric import Fabric
from ..net.params import NetworkParams, myrinet2000
from ..net.topology import Topology
from ..sim.core import Environment, Process, SimulationError
from .context import ProcessContext
from .memory import Region
from .server import ServerThread

__all__ = ["ClusterRuntime", "DeadlockError"]


class DeadlockError(SimulationError):
    """The event queue drained while spawned programs were still alive."""


class ClusterRuntime:
    """A fully wired simulated cluster."""

    def __init__(
        self,
        nprocs: int,
        procs_per_node: int = 1,
        params: Optional[NetworkParams] = None,
        fence_mode: str = "confirm",
        placement: Optional[Iterable[int]] = None,
        monitor: Optional[Any] = None,
    ):
        self.params = params if params is not None else myrinet2000()
        self.env = Environment()
        # RMCSan: install the monitor before regions/servers are built so
        # every layer picks it up; with no explicit monitor, an ambient
        # trace capture (``repro ... --trace-out``) may attach one.
        if monitor is not None:
            monitor.install(self.env)
        else:
            from ..analysis import capture

            monitor = capture.attach(self.env)
        self.monitor = monitor
        self.topology = Topology(
            nprocs,
            procs_per_node=procs_per_node,
            placement=list(placement) if placement is not None else None,
        )
        self.fabric = Fabric(self.env, self.topology, self.params)
        # Crash-stop membership: only constructed when the fault plan
        # schedules ProcessCrash events (or transient partition / pause
        # windows, which need quorum tracking), so fault-free runs stay
        # byte-identical ("disabled means absent").
        self.membership = None
        plan = self.params.faults
        if plan is not None and (plan.crashes or plan.partitions or plan.pauses):
            from .membership import MembershipService

            self.membership = MembershipService(self)
            self.fabric.attach_membership(self.membership)
            self.membership.install()
        self.regions: Dict[int, Region] = {
            rank: Region(self.env, rank) for rank in range(nprocs)
        }
        self.servers: Dict[int, ServerThread] = {}
        for node in range(self.topology.nnodes):
            server = ServerThread(
                self.env, node, self.fabric, self.topology, self.params, self.regions
            )
            server.start()
            self.servers[node] = server
        self.comms: Dict[int, Comm] = {
            rank: Comm(self.env, rank, self.topology, self.fabric, self.params)
            for rank in range(nprocs)
        }
        self.armcis: Dict[int, Armci] = {
            rank: Armci(
                self.env,
                rank,
                self.topology,
                self.fabric,
                self.params,
                self.regions,
                self.servers,
                comm=self.comms[rank],
                fence_mode=fence_mode,
            )
            for rank in range(nprocs)
        }
        self._contexts: Dict[int, ProcessContext] = {}
        self._programs: List[Process] = []

    def __repr__(self) -> str:
        return (
            f"<ClusterRuntime nprocs={self.topology.nprocs} "
            f"nnodes={self.topology.nnodes}>"
        )

    @property
    def nprocs(self) -> int:
        return self.topology.nprocs

    def context(self, rank: int) -> ProcessContext:
        """The (cached) execution context of ``rank``."""
        ctx = self._contexts.get(rank)
        if ctx is None:
            ctx = ProcessContext(self, rank)
            self._contexts[rank] = ctx
        return ctx

    # -- program execution ------------------------------------------------------

    def spawn(
        self,
        main: Callable,
        *args: Any,
        ranks: Optional[Iterable[int]] = None,
    ) -> Dict[int, Process]:
        """Start ``main(ctx, *args)`` on the given ranks (default: all)."""
        if ranks is None:
            ranks = range(self.nprocs)
        procs: Dict[int, Process] = {}
        for rank in ranks:
            ctx = self.context(rank)
            proc = self.env.process(main(ctx, *args), name=f"{main.__name__}[{rank}]")
            if self.monitor is not None:
                self.monitor.register_process(proc, f"p{rank}")
            if self.membership is not None:
                self.membership.adopt(proc, rank)
            procs[rank] = proc
            self._programs.append(proc)
        return procs

    def run(self, until: Any = None) -> None:
        """Run the simulation; raises :class:`DeadlockError` on a hang.

        Server threads loop forever, so a drained queue with live programs
        means those programs are blocked on events nobody will trigger.
        """
        self.env.run(until=until)
        if until is None:
            stuck = [p for p in self._programs if p.is_alive]
            if stuck:
                details = ", ".join(
                    f"{p.name} (waiting on {p.target!r})" for p in stuck
                )
                raise DeadlockError(f"programs never finished: {details}")

    def run_spmd(self, main: Callable, *args: Any) -> List[Any]:
        """Spawn ``main`` on every rank, run to completion, return results.

        Results are ordered by rank.  Any rank's exception propagates.
        """
        procs = self.spawn(main, *args)
        self.run()
        results: List[Any] = []
        for rank in range(self.nprocs):
            proc = procs[rank]
            if not proc.triggered:  # pragma: no cover - guarded by run()
                raise DeadlockError(f"rank {rank} never finished")
            if not proc.ok:
                raise proc.value
            results.append(proc.value)
        return results


def simulate(
    main: Callable,
    nprocs: int,
    *args: Any,
    **runtime_kwargs: Any,
) -> List[Any]:
    """One-shot convenience: build a runtime, run ``main`` SPMD, return results."""
    runtime = ClusterRuntime(nprocs, **runtime_kwargs)
    return runtime.run_spmd(main, *args)
