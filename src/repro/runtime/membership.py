"""Crash-stop membership: failure detection, epoch views, lock recovery.

The paper's synchronization operations assume every participant stays up:
a barrier waits for all ranks' credits, a lock queue hands the grant to
whatever ticket comes next, a token algorithm forwards requests along
pointers that may name a dead process.  This module adds the machinery a
crash-stop failure model needs on top of the existing stack:

* **Failure detection.**  Each live rank refreshes a per-rank *last heard*
  timestamp — implicitly with every fabric transmission it makes
  (piggybacked, zero-cost) and explicitly through a seeded, jittered
  heartbeat process that covers idle ranks.  A detector process scans the
  timestamps every ``membership_check_us`` and declares a rank dead after
  ``suspect_timeout_us`` of silence.  The reliable transport short-cuts
  the timeout: exhausting a frame's retry budget reports the peer
  straight to :meth:`MembershipService.suspect`.

* **Epoch-numbered views.**  Every declaration bumps the membership
  *epoch* and records the survivor set.  Protocol code tags exchanges
  with the epoch they started under and re-derives partner schedules from
  the current view when the epoch moves (see
  :mod:`repro.mp.collectives` and :mod:`repro.armci.barrier`).

* **Lease-based lock recovery.**  Lock acquisitions are recorded as
  leases (holder, ticket, epoch).  When the holder — or any queued
  waiter — dies, a per-algorithm recovery coordinator revokes the lease
  and splices the queue: ticket/hybrid/server locks skip dead ticket
  numbers, LH/MCS repair successor pointers (ghost-releasing on behalf
  of the dead), Naimi/Trehel and Raymond regenerate the token at a
  deterministic survivor via injected ``view_change`` messages.

* **Write-off accounting.**  A dead rank may have issued ``op_init``
  credits whose operations never reached the target server.  At kill
  time the service snapshots the rank's ``op_init`` array; survivors'
  barrier waits subtract the still-owed portion (snapshot minus the
  per-pair applied count maintained by :meth:`note_apply`).

* **Partition tolerance (transient faults).**  When the plan schedules
  :class:`~repro.net.faults.Partition` or
  :class:`~repro.net.faults.ProcessStall` windows, failures become
  *recoverable*: a rank cut off from the strict majority of live nodes
  (or paused) is **excluded** — epoch bump, revoked leases, write-off
  snapshot — without being killed, and the minority side **freezes** its
  sync operations (:meth:`freeze_gate` queues; it never declares
  survivors).  Healing merges views deterministically in one epoch bump
  per window and resynchronizes each returning rank: its credit
  snapshot is retired (queued cross-cut writes land monotonically), and
  token locks regenerated during its absence replay a ``view_change`` so
  a stale token it still holds is dropped.  Epoch **fencing tokens**
  (one counter per lock, bumped at every lease revocation) let the lock
  layer and the NIC engine reject actions by stale holders on heal.

**Disabled means absent**: the service is only constructed when the fault
plan schedules :class:`~repro.net.faults.ProcessCrash` events or
transient windows.  Every hook in the fabric, server, locks, and
collectives is a single ``is None`` check, so fault-free runs are
byte-identical to a build without this module; with crashes but no
transient windows, every new code path hides behind one ``_transient``
flag and crash-stop behavior is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..net.message import Endpoint
from ..sim.core import Process

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import ClusterRuntime

__all__ = ["MembershipService", "Lease"]

#: Actor label used for membership events in RMCSan traces.
MEMBERSHIP_ACTOR = "membership"


@dataclass
class Lease:
    """One lock acquisition recorded for crash recovery."""

    key: Tuple[str, str, int]  # (kind, name, home_rank)
    holder: int
    ticket: Optional[int]
    acquired_at: float
    epoch: int


class MembershipService:
    """Per-runtime failure detector, view manager, and recovery engine."""

    def __init__(self, runtime: "ClusterRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.params = runtime.params
        self.topology = runtime.topology
        self.fabric = runtime.fabric
        self.monitor = getattr(runtime, "monitor", None)
        plan = self.params.faults
        self.plan = plan
        nprocs = self.topology.nprocs
        seed = plan.seed if plan.seed is not None else self.params.seed
        self._seed = seed

        #: Current membership epoch; bumped once per declared death.
        self.epoch = 0
        self._alive: Set[int] = set(range(nprocs))
        self._dead: Set[int] = set()
        #: Epoch -> survivor view (sorted tuple) at the time it started.
        self._views: Dict[int, Tuple[int, ...]] = {0: tuple(range(nprocs))}
        self._last_heard: Dict[int, float] = {r: 0.0 for r in range(nprocs)}
        #: Actual kill time / declaration time per rank (detection latency).
        self.crashed_at: Dict[int, float] = {}
        self.declared_at: Dict[int, float] = {}
        #: Nodes whose server was killed (machine crashes).
        self._killed_nodes: Set[int] = set()
        #: Nodes whose NIC co-processor was killed (NIC-only or machine).
        self._dead_nics: Set[int] = set()

        # Which ranks the plan will kill (node crashes expand to all hosted
        # ranks); heartbeats and the detector retire once every planned
        # death has been declared, so the event queue can drain.
        planned: Set[int] = set()
        for crash in plan.crashes:
            if crash.rank is not None:
                planned.add(crash.rank)
            elif crash.node is not None:
                planned.update(self.topology.ranks_on(crash.node))
            # NIC-only crashes kill no rank directly: the hosted ranks die
            # only if transport suspicion escalates the silent NIC to a
            # machine crash, so they are not *planned* deaths and must not
            # keep the heartbeat/detector loops alive waiting for them.
        self._planned_ranks = planned

        #: Process ownership: rank -> processes to cancel on its death.
        self._owned: Dict[int, List[Process]] = {}
        self._owner_of: Dict[Process, int] = {}

        #: Lock registry: (kind, name, home_rank) -> {"kind", "handles"}.
        self._locks: Dict[Tuple[str, str, int], Dict[str, Any]] = {}
        #: Active leases by lock key.
        self._leases: Dict[Tuple[str, str, int], Lease] = {}
        #: Revoked (dead) ticket numbers by lock cells (home_rank, base_addr).
        self._revoked_tickets: Dict[Tuple[int, int], Set[int]] = {}

        #: Per-(src, dst) count of remote write ops applied at the server.
        self._applied: Dict[Tuple[int, int], int] = {}
        #: Dead ranks' op_init arrays, snapshotted at kill time.
        self._op_init_snapshot: Dict[int, List[int]] = {}

        #: Completion ledger for crash-resilient collectives:
        #: instance key -> (value, epoch the instance completed under).
        self._ledger: Dict[Any, Tuple[Any, int]] = {}

        # -- transient-fault (partition / pause) state.  All of it stays
        # empty (and every consulting code path is gated on ``_transient``)
        # unless the plan schedules partition or pause windows, so
        # crash-only runs are byte-identical to the pre-partition build.
        self._transient = plan.transient
        #: Ranks transiently excluded from the view (alive, not dead).
        self._excluded: Set[int] = set()
        self._excluded_at: Dict[int, float] = {}
        self._excluded_epoch: Dict[int, int] = {}
        self.rejoined_at: Dict[int, float] = {}
        #: Per-lock fencing tokens, bumped at every lease revocation: a
        #: holder whose acquisition-time token no longer matches is stale.
        self._fence_tokens: Dict[Tuple[str, str, int], int] = {}
        #: Token-lock regenerations: key -> (epoch, view_change payload),
        #: replayed to a rejoining rank so its stale token is dropped.
        self._token_regen: Dict[Tuple[str, str, int], Tuple[int, Dict[str, Any]]] = {}
        #: Ranks mid-rejoin: readmitted to the view but whose state resync
        #: messages are not yet posted (the freeze gate holds them).
        self._resyncing: Set[int] = set()
        #: Tests patch this off to demonstrate the sanitizer catching an
        #: un-resynchronized rejoin (stale token survives the heal).
        self.resync_enabled = True
        #: Freeze bookkeeping: rank -> freeze start (active), plus logs.
        self._freeze_started: Dict[int, float] = {}
        self.freeze_log: List[Dict[str, Any]] = []
        self.heal_log: List[Dict[str, Any]] = []
        self.suspicions_discarded = 0
        #: Keep the heartbeat/detector loops alive through the last
        #: transient window plus one full detection cycle.
        self._loops_until = (
            plan.transient_end_us
            + self.params.suspect_timeout_us
            + self.params.membership_check_us
            if self._transient
            else 0.0
        )

        #: Recovery trail (chaosbench reporting + tests).
        self.recovery_log: List[Dict[str, Any]] = []
        self._subscribers: List[Any] = []
        self._installed = False

    def __repr__(self) -> str:
        return (
            f"<MembershipService epoch={self.epoch} "
            f"alive={len(self._alive)} dead={sorted(self._dead)}>"
        )

    # -- wiring ---------------------------------------------------------------

    def install(self) -> None:
        """Wrap process creation and start executors/heartbeats/detector."""
        if self._installed:  # pragma: no cover - wired once by the runtime
            return
        self._installed = True
        env = self.env
        # Chain through the environment's factory hook (Environment uses
        # __slots__); an already-installed factory (e.g. the RMCSan
        # monitor's actor inheritance) keeps working underneath ours.
        base_factory = env._process_factory

        def process_with_ownership(generator, name=None):
            owner = self._owner_of.get(env.active_process)
            if base_factory is not None:
                proc = base_factory(generator, name=name)
            else:
                proc = Process(env, generator, name=name)
            if owner is not None and owner not in self._dead:
                self._owner_of[proc] = owner
                self._owned.setdefault(owner, []).append(proc)
            return proc

        env._process_factory = process_with_ownership
        for crash in self.plan.crashes:
            env.process(self._crash_executor(crash), name=f"crash@{crash.at_us}")
        if self._transient:
            for part in self.plan.partitions:
                env.process(
                    self._heal_executor(part), name=f"heal@{part.until_us}"
                )
            for pause in self.plan.pauses:
                env.process(
                    self._resume_executor(pause),
                    name=f"resume[{pause.rank}]@{pause.until_us}",
                )
        for rank in sorted(self._alive):
            proc = env.process(self._heartbeat_loop(rank), name=f"hb[{rank}]")
            self.adopt(proc, rank)
        env.process(self._detector_loop(), name="membership.detector")

    def adopt(self, proc: Process, rank: int) -> None:
        """Record that ``proc`` belongs to ``rank`` (killed with it)."""
        self._owner_of[proc] = rank
        self._owned.setdefault(rank, []).append(proc)

    # -- views ----------------------------------------------------------------

    def is_alive(self, rank: int) -> bool:
        return rank in self._alive

    def alive_ranks(self) -> Tuple[int, ...]:
        """The current survivor view (sorted)."""
        return self._views[self.epoch]

    def view(self, epoch: int) -> Tuple[int, ...]:
        """The survivor view recorded when ``epoch`` began."""
        return self._views[epoch]

    def node_dead(self, node: int) -> bool:
        """True once a machine crash of ``node`` has been declared."""
        if node not in self._killed_nodes:
            return False
        return all(r in self._dead for r in self.topology.ranks_on(node))

    def dead_ranks(self) -> Tuple[int, ...]:
        return tuple(sorted(self._dead))

    def excluded_ranks(self) -> Tuple[int, ...]:
        """Ranks transiently excluded from the view (alive, not dead)."""
        return tuple(sorted(self._excluded))

    def in_view(self, rank: int) -> bool:
        """Is ``rank`` a member of the current view (alive and included)?"""
        return rank in self._alive and rank not in self._excluded

    def subscribe(self, callback) -> None:
        """``callback(epoch)`` fires after every view change."""
        self._subscribers.append(callback)

    # -- quorum (transient faults only) ----------------------------------------

    def _window_active(self, when: float) -> bool:
        return any(p.covers(when) for p in self.plan.partitions)

    def _live_nodes(self) -> Tuple[int, ...]:
        return tuple(
            n for n in range(self.topology.nnodes) if n not in self._killed_nodes
        )

    def _in_majority_component(self, node: int, when: float) -> bool:
        """Is ``node`` in a component holding a strict majority of live nodes?

        The quorum rule is a *strict* majority (``2 * |component| >
        |live nodes|``): an even split freezes both sides, which is the
        only safe answer — healing is scheduled, so freezing cannot
        deadlock, while letting both halves of a 2-2 split proceed is
        exactly the split-brain this subsystem exists to prevent.
        """
        live = self._live_nodes()
        for comp in self.plan.components(live, when):
            if node in comp:
                return 2 * len(comp) > len(live)
        return False

    def _majority_exists(self, when: float) -> bool:
        """Does *some* component hold a strict majority of live nodes?"""
        live = self._live_nodes()
        if not self._window_active(when):
            return True
        return any(
            2 * len(comp) > len(live) for comp in self.plan.components(live, when)
        )

    def quorum_ok(self, rank: int) -> bool:
        """May ``rank`` run sync operations right now (quorum side, not
        paused)?  Always true without transient windows."""
        if not self._transient:
            return True
        now = self.env.now
        if self.plan.stalled(rank, now):
            return False
        if not self._window_active(now):
            return True
        return self._in_majority_component(self.topology.node_of(rank), now)

    def _transient_attributable(self, rank: int, when: float) -> bool:
        """Is ``rank``'s silence explained by an active transient window
        (paused, or cut off from the majority component)?"""
        if not self._transient:
            return False
        if self.plan.stalled(rank, when):
            return True
        if not self._window_active(when):
            return False
        return not self._in_majority_component(self.topology.node_of(rank), when)

    # -- liveness inputs -------------------------------------------------------

    def note_traffic(self, src_rank: Any) -> None:
        """Piggybacked liveness: any accepted fabric post refreshes the rank.

        During a transient window the refresh is suppressed for ranks the
        majority cannot hear (paused, or on the minority side of a cut):
        their local sends do not reach the detector's side, so letting
        them refresh would blind the failure detector to the partition.
        """
        if src_rank in self._alive:
            if self._transient and self._refresh_suppressed(src_rank):
                return
            self._last_heard[src_rank] = self.env.now

    def heartbeat(self, rank: int, now: float) -> None:
        if rank in self._alive:
            if self._transient and self._refresh_suppressed(rank):
                return
            self._last_heard[rank] = now

    def _refresh_suppressed(self, rank: Any) -> bool:
        now = self.env.now
        plan = self.plan
        if plan.pauses and isinstance(rank, int) and plan.stalled(rank, now):
            return True
        if not plan.partitions or not self._window_active(now):
            return False
        if not isinstance(rank, int):
            return False  # NIC engines stamp tuple sources; no rank liveness
        return not self._in_majority_component(self.topology.node_of(rank), now)

    def suspect(self, endpoint: Endpoint, reason: str = "suspected") -> None:
        """Transport-level suspicion (retry budget exhausted on a peer).

        With transient windows in the plan, a suspicion needs
        *corroboration* before it escalates: the raiser may itself be the
        partitioned-away party.  A target the majority component can
        still hear is never declared on transport evidence alone while a
        cut is active (the suspicion is discarded); a target that is
        paused or cut off from the majority is transiently *excluded* —
        reversible, no kill — and only when no window explains the
        silence does the crash-stop declaration proceed as before.
        """
        kind, which = endpoint
        if self._transient:
            now = self.env.now
            if kind == "mp":
                targets: Tuple[int, ...] = (which,)
            else:
                targets = tuple(self.topology.ranks_on(which))
            for rank in targets:
                if rank not in self._alive or rank in self._excluded:
                    continue
                if self._transient_attributable(rank, now):
                    if self._majority_exists(now):
                        self._exclude_rank(rank, reason=reason)
                    else:
                        # Even split: no side has quorum, nobody may act.
                        self.suspicions_discarded += 1
                elif self._window_active(now):
                    # A cut is active and the target sits on the majority
                    # side: a quorum of peers still hears it, so the
                    # raiser is the partitioned one.  Discard.
                    self.suspicions_discarded += 1
                else:
                    if kind in ("srv", "nic"):
                        self._killed_nodes.add(which)
                        self._declare_dead(rank, reason=f"node {which}: {reason}")
                    else:
                        self._declare_dead(rank, reason=reason)
            return
        if kind == "mp":
            self._declare_dead(which, reason=reason)
        elif kind in ("srv", "nic"):
            # A server (or NIC co-processor) that stopped acknowledging is
            # a machine crash: the node's ranks go with it.
            self._killed_nodes.add(which)
            for rank in self.topology.ranks_on(which):
                self._declare_dead(rank, reason=f"node {which}: {reason}")

    # -- crash execution -------------------------------------------------------

    def _crash_executor(self, crash):
        yield self.env.timeout(crash.at_us)
        if crash.rank is not None:
            self._kill_rank(crash.rank)
        elif crash.node is not None:
            self._kill_node(crash.node)
        else:
            self._kill_nic(crash.nic)

    def _kill_rank(self, rank: int) -> None:
        """Fail-stop a user process: cancel generators, silence the fabric."""
        if rank in self.crashed_at:
            return
        self.crashed_at[rank] = self.env.now
        armci = self.runtime.armcis.get(rank)
        if armci is not None:
            self._op_init_snapshot[rank] = list(armci.op_init)
        self.fabric.mark_dead(("mp", rank))
        if self.fabric.reliable is not None:
            # Fail-stop includes the rank's sender-side transport state:
            # no retransmissions from beyond the grave (frames already on
            # the wire may still land; write-off accounting is monotone).
            self.fabric.reliable.abandon_sender(rank)
        for proc in self._owned.get(rank, ()):
            if proc.is_alive and proc is not self.env.active_process:
                proc.kill()

    def _kill_node(self, node: int) -> None:
        """Machine crash: the server thread and every hosted rank die.

        Idempotent: a node crash scheduled after one of its ranks (or its
        NIC, or the whole node) already died simply kills whatever is
        still running — ``_kill_rank`` and ``_kill_nic`` each no-op on an
        already-dead target.
        """
        self._killed_nodes.add(node)
        server = self.runtime.servers.get(node)
        if server is not None and server._proc is not None and server._proc.is_alive:
            server._proc.kill()
        self.fabric.mark_dead(("srv", node))
        # The node's NIC dies with it: refuse frames addressed to it and
        # stop its co-processor so degraded NIC barriers terminate.
        self._kill_nic(node)
        for rank in self.topology.ranks_on(node):
            self._kill_rank(rank)

    def _kill_nic(self, node: int) -> None:
        """NIC-only crash: the co-processor dies, the host side survives.

        The ``("nic", node)`` endpoint is marked dead (frames from/to it
        are refused) and any in-flight offloaded-barrier epoch on the
        engine is abandoned.  The hosted ranks and the server stay up:
        detection is the reliable layer's job — peer NICs exhaust their
        retry budget against the silent endpoint and
        :meth:`suspect` escalates the node to a machine-crash declaration.
        Hosts that ring a doorbell on a dead local NIC degrade immediately
        to the resilient host exchange (see :mod:`repro.armci.barrier`).
        """
        if node in self._dead_nics:
            return
        self._dead_nics.add(node)
        if node in self._killed_nodes:
            # Machine crash: the whole node is declared dead, so peers must
            # stop retrying outright (mark_dead also abandons backlog).
            self.fabric.mark_dead(("nic", node))
        else:
            # NIC-only crash: the device goes *silent*.  Peers' frames are
            # swallowed unACKed so the reliable layer's retry exhaustion
            # escalates the silence into a machine-crash suspicion.
            self.fabric.blackhole(("nic", node))
        engines = getattr(self.fabric, "_nic_engines", None)
        if engines is not None and node in engines:
            engines[node].shutdown()
        if self.monitor is not None:
            self.monitor.emit(
                "nic_crashed", actor=MEMBERSHIP_ACTOR, node=node,
                at=self.env.now,
            )

    def nic_dead(self, node: int) -> bool:
        """True once ``node``'s NIC co-processor has been killed."""
        return node in self._dead_nics

    # -- detection -------------------------------------------------------------

    def _all_planned_declared(self) -> bool:
        return self._planned_ranks <= self._dead

    def _loops_done(self) -> bool:
        """May the heartbeat/detector loops retire?

        Crash-only runs retire once every planned death is declared (the
        original rule).  Transient runs additionally stay up through the
        last window plus one detection cycle, and while any rank is still
        excluded (its rejoin needs a live detector epoch).
        """
        if not self._all_planned_declared():
            return False
        if self._transient and (self.env.now < self._loops_until or self._excluded):
            return False
        return True

    def _heartbeat_loop(self, rank: int):
        rng = random.Random(f"membership:{self._seed}:{rank}")
        interval = self.params.heartbeat_us
        if interval <= 0.0:  # heartbeats disabled: rely on traffic + retries
            return
        while not self._loops_done():
            yield self.env.timeout(interval * (0.75 + 0.5 * rng.random()))
            if rank in self._dead:
                return
            self.heartbeat(rank, self.env.now)

    def _detector_loop(self):
        p = self.params
        check = p.membership_check_us if p.membership_check_us > 0.0 else p.heartbeat_us
        if check <= 0.0:  # pragma: no cover - degenerate configuration
            return
        while not self._loops_done():
            yield self.env.timeout(check)
            now = self.env.now
            for rank in sorted(self._alive):
                if self._transient and rank in self._excluded:
                    continue
                if now - self._last_heard[rank] > p.suspect_timeout_us:
                    if self._transient and self._transient_attributable(rank, now):
                        # Silence explained by an active window: transient
                        # exclusion (if a quorum exists to corroborate it),
                        # never a death declaration.
                        if self._majority_exists(now):
                            self._exclude_rank(rank, reason="heartbeat silence")
                        continue
                    self._declare_dead(rank, reason="heartbeat silence")

    # -- declaration + view change ---------------------------------------------

    def _declare_dead(self, rank: int, reason: str) -> None:
        if rank not in self._alive:
            return
        now = self.env.now
        if rank not in self.crashed_at:
            # Suspected without a scheduled kill (e.g. a fully partitioned
            # link): enforce fail-stop so the suspected rank cannot act on
            # a view that no longer contains it.
            self._kill_rank(rank)
        self._alive.discard(rank)
        self._dead.add(rank)
        # Death trumps transient exclusion: a rank that crashed while
        # partitioned away must not linger in the excluded set (it will
        # never rejoin, and the loops wait for exclusions to drain).
        if self._excluded:
            self._excluded.discard(rank)
            self._excluded_at.pop(rank, None)
            self._excluded_epoch.pop(rank, None)
        self.declared_at[rank] = now
        self.epoch += 1
        view = tuple(sorted(self._alive - self._excluded))
        self._views[self.epoch] = view
        if self.monitor is not None:
            node = self.topology.node_of(rank)
            self.monitor.emit(
                "proc_crashed",
                actor=MEMBERSHIP_ACTOR,
                rank=rank,
                node=node,
                node_crashed=node in self._killed_nodes,
                crashed_at=self.crashed_at[rank],
                declared_at=now,
                detect_latency_us=now - self.crashed_at[rank],
                reason=reason,
            )
            extra = (
                {"excluded": sorted(self._excluded)} if self._transient else {}
            )
            self.monitor.emit(
                "view_change",
                actor=MEMBERSHIP_ACTOR,
                epoch=self.epoch,
                alive=list(view),
                dead=sorted(self._dead),
                **extra,
            )
        # Revoke any lease the dead rank held.
        for key, lease in list(self._leases.items()):
            if lease.holder == rank:
                del self._leases[key]
                self._bump_fence(key)
                if self.monitor is not None:
                    self.monitor.emit(
                        "lease_revoked",
                        actor=MEMBERSHIP_ACTOR,
                        lock=f"{key[0]}:{key[1]}@{key[2]}",
                        rank=rank,
                        ticket=lease.ticket,
                        epoch=self.epoch,
                    )
        # Splice the dead rank out of every lock it participates in.
        for key in sorted(self._locks):
            if rank in self._locks[key]["handles"]:
                self.env.process(
                    self._recover_lock(key, rank),
                    name=f"recover:{key[0]}:{key[1]}:{rank}",
                )
        # Commit-or-abort for NIC barrier epochs, *before* hosts observe
        # the view change: a host woken by its subscriber callback must
        # already see its release fired if the epoch committed anywhere.
        self._resolve_nic_epochs()
        for callback in list(self._subscribers):
            callback(self.epoch)

    def _resolve_nic_epochs(self) -> None:
        """Finish NIC barrier epochs that committed on *some* engine.

        A crashed NIC can wedge peers in the inter-NIC stage-3 barrier
        after another engine already released its hosts.  Released hosts
        have moved on, so the wedged hosts must not degrade to the
        resilient host exchange (they would wait forever for the released
        ones).  Commitment on any engine implies every engine entered
        stage 3 — all remote operations drained — so completing the epoch
        for every live host is safe; with no commitment anywhere, all
        hosts degrade together and stay consistent.
        """
        engines = getattr(self.fabric, "_nic_engines", None)
        if not engines:
            return
        committed = set()
        for engine in engines.values():
            committed |= engine.committed
        for epoch in sorted(committed):
            for engine in engines.values():
                engine.force_release(epoch)

    # -- transient exclusion, heal, and rejoin -----------------------------------

    def _exclude_rank(self, rank: int, reason: str) -> None:
        """Reversibly remove a partition/stall casualty from the view.

        Unlike :meth:`_declare_dead` the rank is *not* killed: its
        processes keep running (on the minority side they freeze at their
        next sync operation), its memory survives, and it rejoins through
        :meth:`_rejoin_ranks` once the fault window closes.  Any lease it
        holds is revoked and fenced so the majority can regenerate the
        lock — the excluded ex-holder's own release is rejected by the
        fencing-token check when it eventually runs.
        """
        if rank not in self._alive or rank in self._excluded:
            return
        now = self.env.now
        self._excluded.add(rank)
        self._excluded_at[rank] = now
        # Snapshot issued-op counters exactly as the crash path does, so
        # majority-side barriers can write off credits the excluded rank's
        # frozen traffic will not deliver until heal.
        armci = self.runtime.armcis.get(rank)
        if armci is not None:
            self._op_init_snapshot[rank] = list(armci.op_init)
        self.epoch += 1
        self._excluded_epoch[rank] = self.epoch
        view = tuple(sorted(self._alive - self._excluded))
        self._views[self.epoch] = view
        if self.monitor is not None:
            self.monitor.emit(
                "proc_excluded",
                actor=MEMBERSHIP_ACTOR,
                rank=rank,
                node=self.topology.node_of(rank),
                excluded_at=now,
                epoch=self.epoch,
                reason=reason,
            )
            self.monitor.emit(
                "view_change",
                actor=MEMBERSHIP_ACTOR,
                epoch=self.epoch,
                alive=list(view),
                dead=sorted(self._dead),
                excluded=sorted(self._excluded),
            )
        # Revoke + fence any lease the excluded rank holds and regenerate
        # the lock for the majority.  Token locks are message-based and
        # always recoverable; the shared-memory families need the lock's
        # home region on the majority side — when the home node is cut off
        # too, the lease stays put and majority requesters simply queue
        # until heal (safe: nobody can reach the lock words either way).
        for key, lease in list(self._leases.items()):
            if lease.holder != rank:
                continue
            kind = self._locks[key]["kind"] if key in self._locks else key[0]
            if kind not in ("naimi", "raymond"):
                home_node = self.topology.node_of(key[2])
                if not self._in_majority_component(home_node, now):
                    continue
            del self._leases[key]
            self._bump_fence(key)
            if self.monitor is not None:
                self.monitor.emit(
                    "lease_revoked",
                    actor=MEMBERSHIP_ACTOR,
                    lock=f"{key[0]}:{key[1]}@{key[2]}",
                    rank=rank,
                    ticket=lease.ticket,
                    epoch=self.epoch,
                    live=True,
                )
            self.env.process(
                self._recover_lock(key, rank, transient=True),
                name=f"recover:{key[0]}:{key[1]}:{rank}",
            )
        self._resolve_nic_epochs()
        for callback in list(self._subscribers):
            callback(self.epoch)

    def _heal_executor(self, part):
        """Runs at a partition's ``until_us``: reset silence clocks and
        rejoin every excluded rank that is back in a majority component."""
        yield self.env.timeout(part.until_us)
        now = self.env.now
        # The disruption is over; pre-heal silence must not be
        # misattributed to post-heal crash suspicion.
        for r in self._alive:
            self._last_heard[r] = now
        # Excluded ranks that crashed while away will never rejoin.
        for r in sorted(self._excluded):
            if r in self.crashed_at:
                self._declare_dead(r, reason="crashed while excluded")
        healing = [r for r in sorted(self._excluded) if self.quorum_ok(r)]
        if self.monitor is not None:
            self.monitor.emit(
                "partition_heal",
                actor=MEMBERSHIP_ACTOR,
                nodes=list(part.nodes),
                from_us=part.from_us,
                healed_at=now,
                rejoining=list(healing),
            )
        yield from self._rejoin_ranks(healing)
        self.heal_log.append(
            {
                "nodes": list(part.nodes),
                "from_us": part.from_us,
                "healed_at_us": now,
                "rejoined": list(healing),
                "epoch": self.epoch,
            }
        )

    def _resume_executor(self, pause):
        """Runs at a process stall's ``until_us``: the rank starts making
        progress again, so clear its silence clock and rejoin it."""
        yield self.env.timeout(pause.until_us)
        rank = pause.rank
        now = self.env.now
        if rank in self._alive:
            self._last_heard[rank] = now
        if rank not in self._excluded:
            return
        if rank in self.crashed_at:
            self._declare_dead(rank, reason="crashed while excluded")
            return
        yield from self._rejoin_ranks([rank])

    def _rejoin_ranks(self, ranks):
        """Readmit excluded ranks under one new epoch and resynchronize
        their state from the majority before the freeze gate releases them.

        Resynchronization covers (a) the issued-op snapshot taken at
        exclusion — popped here, so credit accounting re-baselines on the
        rank's live counters (queued cross-cut traffic delivered after
        heal bumps ``op_done`` and the applied counts monotonically) — and
        (b) token locks regenerated while the rank was away: the recorded
        ``view_change`` is replayed into the rank's own mailbox, intra-node
        FIFO ahead of any acquire it could issue once unfrozen, so a stale
        token can never grant before the daemon learns the new epoch floor.
        """
        eligible = [
            r
            for r in sorted(set(ranks))
            if r in self._excluded
            and r in self._alive
            and r not in self.crashed_at
            and self.quorum_ok(r)
        ]
        if not eligible:
            return
        now = self.env.now
        self._resyncing.update(eligible)
        details = []
        for r in eligible:
            self._excluded.discard(r)
            excluded_at = self._excluded_at.pop(r, now)
            exc_epoch = self._excluded_epoch.pop(r, 0)
            self._op_init_snapshot.pop(r, None)
            self.rejoined_at[r] = now
            self._last_heard[r] = now
            details.append((r, excluded_at, exc_epoch))
        self.epoch += 1
        view = tuple(sorted(self._alive - self._excluded))
        self._views[self.epoch] = view
        if self.monitor is not None:
            self.monitor.emit(
                "view_change",
                actor=MEMBERSHIP_ACTOR,
                epoch=self.epoch,
                alive=list(view),
                dead=sorted(self._dead),
                excluded=sorted(self._excluded),
            )
        for r, excluded_at, exc_epoch in details:
            if self.resync_enabled:
                yield from self._token_resync(r, exc_epoch)
            if self.monitor is not None:
                self.monitor.emit(
                    "proc_rejoined",
                    actor=MEMBERSHIP_ACTOR,
                    rank=r,
                    epoch=self.epoch,
                    rejoined_at=self.env.now,
                    excluded_for_us=self.env.now - excluded_at,
                    resynced=self.resync_enabled,
                )
        for r, _, _ in details:
            self._resyncing.discard(r)
        self._resolve_nic_epochs()
        for callback in list(self._subscribers):
            callback(self.epoch)

    def _token_resync(self, rank: int, exc_epoch: int):
        """Replay token-lock regenerations the rank missed while excluded.

        The recorded ``view_change`` payload is re-sent *from the rank's
        own comm* (an intra-node self-send): per-pair FIFO delivery then
        guarantees the lock daemon applies it before any ``local_request``
        the application can post after the freeze gate opens, closing the
        stale-token window without a handshake.
        """
        from ..locks.token_base import LockMessage

        comm = self.runtime.comms[rank]
        for key in sorted(self._token_regen):
            regen_epoch, payload = self._token_regen[key]
            if regen_epoch < exc_epoch:
                continue  # regenerated before this rank left: already seen
            handle = self._locks.get(key, {}).get("handles", {}).get(rank)
            if handle is None:
                continue
            refreshed = dict(payload)
            # Point the rejoiner at the *current* holder when a lease
            # exists — the token may have moved since regeneration — and
            # keep the regeneration epoch so its request/floor epochs stay
            # consistent with what the majority daemons applied.
            target = self.lease_holder(key)
            if target is None or target == rank or not self._present(target):
                target = payload["holder"]
            if target == rank or not self._present(target):
                others = [v for v in self._views[self.epoch] if v != rank]
                target = min(others) if others else rank
            refreshed["holder"] = target
            refreshed["alive"] = sorted(set(payload["alive"]) | {rank})
            yield from comm.send(
                rank, LockMessage("view_change", target, refreshed), tag=handle.tag
            )

    # -- sync freeze gate ---------------------------------------------------------

    def freeze_gate(self, rank: int):
        """Block ``rank`` while it lacks quorum or is mid-rejoin.

        Sync operations (locks, barriers, fences) call this on entry: a
        minority-side or stalled rank queues here — it does *not* fail —
        and proceeds once it is back in a majority view and resynced.
        No-op (and never yields) when the plan has no transient faults.
        """
        if not self._transient:
            return

        def clear() -> bool:
            return (
                self.quorum_ok(rank)
                and rank not in self._excluded
                and rank not in self._resyncing
            )

        if clear():
            return
        start = self.env.now
        self._freeze_started[rank] = start
        if self.monitor is not None:
            self.monitor.emit(
                "sync_frozen", actor=MEMBERSHIP_ACTOR, rank=rank, frozen_at=start
            )
        while not clear():
            yield self.env.timeout(self._freeze_wait_us(rank))
        now = self.env.now
        self._freeze_started.pop(rank, None)
        self.freeze_log.append(
            {
                "rank": rank,
                "frozen_at_us": start,
                "unfrozen_at_us": now,
                "frozen_for_us": now - start,
            }
        )
        if self.monitor is not None:
            self.monitor.emit(
                "sync_unfrozen",
                actor=MEMBERSHIP_ACTOR,
                rank=rank,
                unfrozen_at=now,
                frozen_for_us=now - start,
            )

    def _freeze_wait_us(self, rank: int) -> float:
        """Sleep until the earliest fault window covering ``rank`` can end
        (then fall back to the membership poll period for the rejoin)."""
        now = self.env.now
        poll = self.params.membership_poll_us or 1.0
        ends = [p.until_us for p in self.plan.partitions if p.covers(now)]
        ends += [
            s.until_us
            for s in self.plan.pauses
            if s.rank == rank and s.covers(now)
        ]
        if ends:
            return max(min(ends) - now, poll)
        return poll

    # -- lock registry + leases ------------------------------------------------

    def lock_key(self, handle) -> Tuple[str, str, int]:
        return (handle.kind, handle.name, handle.home_rank)

    def register_lock(self, handle) -> None:
        """Called by every lock handle constructor (one entry per rank)."""
        key = self.lock_key(handle)
        info = self._locks.setdefault(key, {"kind": handle.kind, "handles": {}})
        info["handles"][handle.ctx.rank] = handle

    def lease_acquire(self, handle, ticket: Optional[int]) -> None:
        key = self.lock_key(handle)
        self._leases[key] = Lease(
            key=key,
            holder=handle.ctx.rank,
            ticket=ticket,
            acquired_at=self.env.now,
            epoch=self.epoch,
        )

    def lease_release(self, handle) -> None:
        key = self.lock_key(handle)
        lease = self._leases.get(key)
        if lease is not None and lease.holder == handle.ctx.rank:
            del self._leases[key]

    def lease_holder(self, key: Tuple[str, str, int]) -> Optional[int]:
        lease = self._leases.get(key)
        return lease.holder if lease is not None else None

    def fence_token(self, key: Tuple[str, str, int]) -> int:
        """Monotonic per-lock fencing counter; bumped at every revocation.

        A holder that snapshots this at grant time and finds it changed at
        release time lost its lease while it held the lock (crash recovery
        or partition exclusion regenerated the lock for the survivors) —
        its release must not touch the lock protocol again.
        """
        return self._fence_tokens.get(key, 0)

    def _bump_fence(self, key: Tuple[str, str, int]) -> None:
        self._fence_tokens[key] = self._fence_tokens.get(key, 0) + 1

    def _present(self, rank: int) -> bool:
        """Alive and inside the current view (not partition-excluded)."""
        return rank in self._alive and rank not in self._excluded

    def skip_revoked(self, home_rank: int, base_addr: int, value: int) -> int:
        """Advance a ticket counter value past revoked (dead) tickets."""
        revoked = self._revoked_tickets.get((home_rank, base_addr))
        if not revoked:
            return value
        while value in revoked:
            value += 1
        return value

    # -- write-off accounting ----------------------------------------------------

    def note_apply(self, src_rank: int, dst_rank: int) -> None:
        """A server applied one remote write op from ``src`` to ``dst``."""
        pair = (src_rank, dst_rank)
        self._applied[pair] = self._applied.get(pair, 0) + 1

    def written_off(self, me: int) -> int:
        """Credits owed to ``me`` by dead ranks: operations they issued
        toward ``me``'s server — counted in the barrier totals either live
        or through their kill-time snapshot — that the server will never
        apply.  A straggler op that does land later bumps both ``op_done``
        and the applied count, so the stage-2 comparison stays monotone.
        """
        total = 0
        for dead, snapshot in self._op_init_snapshot.items():
            owed = snapshot[me] - self._applied.get((dead, me), 0)
            if owed > 0:
                total += owed
        return total

    def dead_contribution(self, epoch: int) -> List[int]:
        """Elementwise sum of kill-time ``op_init`` snapshots of ranks dead
        in ``epoch``'s view.

        The lowest survivor folds this into its stage-1 contribution so the
        allreduce totals stay cumulative over the *original* universe —
        the targets' ``op_done`` counters are lifetime-cumulative and
        already include everything dead ranks completed before crashing.
        """
        acc = [0] * self.topology.nprocs
        view = set(self._views.get(epoch, ()))
        for dead, snapshot in self._op_init_snapshot.items():
            if dead in view:
                continue  # will contribute live (or force a view change)
            for i, v in enumerate(snapshot):
                acc[i] += v
        return acc

    # -- completion ledger -------------------------------------------------------

    def ledger_put(self, inst: Any, value: Any, epoch: Optional[int] = None) -> None:
        self._ledger[inst] = (value, self.epoch if epoch is None else epoch)

    def ledger_get(self, inst: Any) -> Optional[Tuple[Any, int]]:
        return self._ledger.get(inst)

    # -- reporting ---------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        detections = [
            {
                "rank": rank,
                "crashed_at_us": self.crashed_at[rank],
                "declared_at_us": self.declared_at[rank],
                "detect_latency_us": self.declared_at[rank] - self.crashed_at[rank],
            }
            for rank in sorted(self.declared_at)
        ]
        out = {
            "epoch": self.epoch,
            "alive": list(self.alive_ranks()),
            "dead": sorted(self._dead),
            "detections": detections,
            "recoveries": list(self.recovery_log),
        }
        if self._transient:
            out["excluded"] = sorted(self._excluded)
            out["rejoins"] = [
                {
                    "rank": rank,
                    "rejoined_at_us": self.rejoined_at[rank],
                }
                for rank in sorted(self.rejoined_at)
            ]
            out["freezes"] = list(self.freeze_log)
            out["heals"] = list(self.heal_log)
            out["suspicions_discarded"] = self.suspicions_discarded
        return out

    # -- lock recovery coordinators ----------------------------------------------

    def _recover_lock(
        self, key: Tuple[str, str, int], dead: int, transient: bool = False
    ):
        kind = self._locks[key]["kind"]
        started = self.env.now
        entry = {
            "lock": f"{key[0]}:{key[1]}@{key[2]}",
            "kind": kind,
            "dead_rank": dead,
            "declared_at_us": started,
            "recovered_at_us": None,
        }
        if transient:
            entry["transient"] = True
        self.recovery_log.append(entry)
        if kind in ("ticket", "hybrid", "server"):
            yield from self._recover_ticket_family(key, dead)
        elif kind == "lh":
            yield from self._recover_lh(key, dead, transient)
        elif kind == "mcs":
            yield from self._recover_mcs(key, dead, transient)
        elif kind in ("naimi", "raymond"):
            yield from self._recover_token(key, dead, kind)
        entry["recovered_at_us"] = self.env.now
        entry["recovery_latency_us"] = self.env.now - started

    # .. ticket / hybrid / server ..................................................

    def _recover_ticket_family(self, key: Tuple[str, str, int], dead: int):
        """Skip dead ticket numbers; ghost-advance if the dead rank held it.

        A ticket from ``counter`` upward that no *live* handle owns and no
        live waiter is queued for belongs to a dead requester (or to a
        grant lost on its way to one): it is revoked and skipped.
        """
        handles = self._locks[key]["handles"]
        any_handle = next(iter(handles.values()))
        home_rank = any_handle.home_rank
        base_addr = any_handle.base_addr
        region = self.runtime.regions[home_rank]
        revoked = self._revoked_tickets.setdefault((home_rank, base_addr), set())
        server = self.runtime.servers[self.topology.node_of(home_rank)]
        waiters = server._lock_waiters.get((home_rank, base_addr), {})

        def note_revoked(ticket: int, rank: int = dead) -> None:
            revoked.add(ticket)
            if self.monitor is not None:
                # The sanitizer's FIFO check must know which ticket numbers
                # were spliced out of the queue by crash recovery.
                self.monitor.emit(
                    "lease_revoked",
                    actor=MEMBERSHIP_ACTOR,
                    lock=f"{key[0]}:{key[1]}@{key[2]}",
                    rank=rank,
                    ticket=ticket,
                    epoch=self.epoch,
                )

        # Drop queued requests from dead ranks.
        for ticket, req in list(waiters.items()):
            if req.src_rank in self._dead:
                note_revoked(ticket, req.src_rank)
                del waiters[ticket]
        if self.params.server_lock_op_us > 0.0:
            yield self.env.timeout(self.params.server_lock_op_us)
        counter_addr = base_addr + 1
        counter = region.read(counter_addr)
        next_ticket = region.read(base_addr)
        # A dead shm-spinner's ticket may sit *behind* a live holder or
        # waiter, where the contiguous head scan below cannot reach (it
        # stops at the first live ticket, and no later declaration re-runs
        # it).  Revoke every not-yet-served ticket owned by a dead rank
        # here so skip_revoked can hop over it when the survivor ahead of
        # it eventually releases.
        for rank, h in handles.items():
            if rank not in self._dead:
                continue
            ticket = getattr(h, "_my_ticket", -1)
            if ticket >= counter and ticket not in revoked:
                note_revoked(ticket, rank)
        # ``rank != dead`` matters only for a transient exclusion (the
        # excluded holder is alive, but its at-head ticket must be ghost-
        # advanced past); for a crash ``dead`` is never in ``_alive``, so
        # the crash-only behaviour is unchanged.  Excluded *waiters* keep
        # their tickets — the head scan stops at them and they are served
        # after they rejoin.
        live_tickets = {
            h._my_ticket
            for rank, h in handles.items()
            if rank in self._alive
            and rank != dead
            and getattr(h, "_my_ticket", -1) >= 0
        }
        new = counter
        while new < next_ticket and new not in live_tickets and new not in waiters:
            if new not in revoked:
                note_revoked(new)
            new += 1
        if new == counter:
            return
        # The counter write wakes local spinners through the region watcher.
        if self.params.shm_access_us > 0.0:
            yield self.env.timeout(self.params.shm_access_us)
        region.write(counter_addr, new)
        pending = waiters.pop(new, None)
        if pending is not None:
            server.stats.grants += 1
            server._current_key = None
            yield from server._reply(pending.src_rank, pending.reply, value=new)

    # .. LH ........................................................................

    def _recover_lh(self, key: Tuple[str, str, int], dead: int, transient: bool = False):
        """Repair the LH queue: ghost-release for a dead holder, or chain a
        ghost forwarder for a dead waiter (grant flows through its cell)."""
        from ..locks.lh import _GRANTED

        handle = self._locks[key]["handles"][dead]
        region = handle._region
        p = self.params
        phase = getattr(handle, "_phase", "idle")
        if transient and phase != "held":
            # Exclusion only ghost-releases the fenced holder; an excluded
            # waiter keeps its queue slot and resumes spinning after heal.
            return
        if phase == "held":
            if p.shm_access_us > 0.0:
                yield self.env.timeout(p.shm_access_us)
            region.write(handle._spin_cell, _GRANTED)
        elif phase == "waiting":
            # When the predecessor eventually grants the dead waiter,
            # forward the grant to whoever spins on the cell it published.
            yield from region.wait_until(
                handle._prev_cell,
                lambda v: v == _GRANTED,
                poll_detect_us=p.poll_detect_us,
            )
            if p.shm_access_us > 0.0:
                yield self.env.timeout(p.shm_access_us)
            region.write(handle._published_cell, _GRANTED)

    # .. MCS .......................................................................

    def _recover_mcs(self, key: Tuple[str, str, int], dead: int, transient: bool = False):
        """Splice a dead rank out of the MCS chain by direct region surgery."""
        from ..locks.mcs import _FALSE, _OFF_LOCKED, _OFF_NEXT, _TRUE
        from .memory import NULL_PTR

        handle = self._locks[key]["handles"][dead]
        phase = getattr(handle, "_phase", "idle")
        p = self.params
        if transient and phase not in ("held", "releasing"):
            # Exclusion only ghost-releases the fenced holder; an excluded
            # waiter keeps its chain position and resumes after heal.
            return
        if phase in ("held", "releasing"):
            # "releasing": killed mid-release — after entering _release()
            # but before the handoff put / tail CAS completed.  The ghost
            # release observes the region first and only repairs what is
            # still missing, so it is safe for every partial outcome.
            yield from self._mcs_ghost_release(key, handle, dead)
            return
        if phase != "waiting":
            return
        prev = getattr(handle, "_prev_ptr", None)
        if prev is None or tuple(prev) == NULL_PTR:
            return  # died before entering the queue
        prev_rank, prev_base = prev
        prev_region = self.runtime.regions[prev_rank]
        dead_region = self.runtime.regions[dead]
        nbase = handle.node_struct.base
        my_ptr = (dead, nbase)
        if p.shm_access_us > 0.0:
            yield self.env.timeout(p.shm_access_us)
        link = (
            prev_region.read(prev_base + _OFF_NEXT),
            prev_region.read(prev_base + _OFF_NEXT + 1),
        )
        if link != my_ptr:
            # The dead rank swapped the tail but never finished linking:
            # complete its enqueue so the predecessor's release can find a
            # successor (and arm the locked flag the handoff will clear).
            dead_region.write(nbase + _OFF_LOCKED, _TRUE)
            prev_region.write(prev_base + _OFF_NEXT, my_ptr[0])
            prev_region.write(prev_base + _OFF_NEXT + 1, my_ptr[1])
        # Wait for the predecessor's (eventual) handoff, then pass it on.
        yield from dead_region.wait_until(
            nbase + _OFF_LOCKED,
            lambda v: v == _FALSE,
            poll_detect_us=p.poll_detect_us,
        )
        yield from self._mcs_ghost_release(key, handle, dead)

    def _mcs_lost_linker(self, handles, dead_handle, my_ptr):
        """The live waiter whose enqueue link targeted ``my_ptr``, if its
        locked flag is already armed (so a ghost handoff cannot race the
        arming store).  At most one waiter can have swapped the tail to
        find ``my_ptr`` as its predecessor."""
        from ..locks.mcs import _OFF_LOCKED, _TRUE

        for rank, h in handles.items():
            if h is dead_handle or getattr(h, "_phase", "idle") != "waiting":
                continue
            prev = getattr(h, "_prev_ptr", None)
            if prev is None or tuple(prev) != my_ptr or rank not in self._alive:
                continue
            base = h.node_struct.base
            if self.runtime.regions[rank].read(base + _OFF_LOCKED) == _TRUE:
                return (rank, base)
        return None

    def _mcs_ghost_release(self, key: Tuple[str, str, int], handle, dead: int):
        """Perform (or finish) the dead rank's release on its behalf.

        Idempotent against a release the dead rank had already begun: every
        branch observes the region state first and only repairs what is
        still missing — a handoff put or tail CAS that was applied before
        the crash is never redone (rewriting a successor's ``locked`` flag
        after it moved on would grant a later acquisition spuriously).
        """
        from ..locks.mcs import _FALSE, _OFF_LOCKED, _OFF_NEXT
        from .memory import NULL_PTR

        p = self.params
        handles = self._locks[key]["handles"]
        dead_region = self.runtime.regions[dead]
        nbase = handle.node_struct.base
        my_ptr = (dead, nbase)
        home_region = self.runtime.regions[handle.home_rank]
        home_node = self.topology.node_of(handle.home_rank)
        lock_addr = handle.lock_addr

        def read_next():
            return (
                dead_region.read(nbase + _OFF_NEXT),
                dead_region.read(nbase + _OFF_NEXT + 1),
            )

        def linker_pending() -> bool:
            """Will anyone still write a link into the dead node's next?

            True for a waiter that enqueued directly behind the dead node
            (its own spin code or crash recovery will complete the link),
            and for a live waiter whose tail swap has not resolved yet —
            it may still turn out to have swapped behind the dead node.
            """
            for rank, h in handles.items():
                if h is handle or getattr(h, "_phase", "idle") != "waiting":
                    continue
                prev = getattr(h, "_prev_ptr", None)
                if prev is not None and tuple(prev) == my_ptr:
                    return True
                if prev is None and rank in self._alive:
                    return True
            return False

        if p.shm_access_us > 0.0:
            yield self.env.timeout(p.shm_access_us)
        next_ptr = read_next()
        if next_ptr == NULL_PTR:
            if p.shm_atomic_us > 0.0:
                yield self.env.timeout(p.shm_atomic_us)
            tail = (home_region.read(lock_addr), home_region.read(lock_addr + 1))
            if tail == my_ptr:
                # Still the tail with no successor: the dead rank's release
                # CAS never applied (or was never issued); perform it.
                home_region.write(lock_addr, NULL_PTR[0])
                home_region.write(lock_addr + 1, NULL_PTR[1])
                return
            if tail == NULL_PTR:
                # The dead rank's own release CAS already applied.
                return
            # The tail moved past the dead node.  Either a successor
            # swapped in behind it and has not linked yet (the link will
            # come), or the dead rank completed its release CAS before
            # crashing and the tail belongs to a fresh chain that owes the
            # dead node nothing.  Resolve by watching the link cell and
            # the waiting handles until one of the two becomes certain.
            dead_node = self.topology.node_of(dead)
            while True:
                next_ptr = read_next()
                if next_ptr != NULL_PTR:
                    break
                if self.node_dead(dead_node):
                    # The dead rank's whole node is down, so a live
                    # successor's link write — routed through that node's
                    # server — can never be applied; waiting for it would
                    # spin forever.  Complete the enqueue on the linker's
                    # behalf (idempotent: the original write is provably
                    # lost).  Only once the linker has armed its own
                    # locked flag, or the handoff below could race the
                    # arming store and be overwritten.
                    linker = self._mcs_lost_linker(handles, handle, my_ptr)
                    if linker is not None:
                        dead_region.write(nbase + _OFF_NEXT, linker[0])
                        dead_region.write(nbase + _OFF_NEXT + 1, linker[1])
                        continue
                if not linker_pending() or self.node_dead(home_node):
                    return  # nobody will ever link: release already done
                yield self.env.timeout(p.membership_poll_us)
        # Hand off — unless the dead rank's own handoff already landed and
        # the successor moved on (its locked flag may since be re-armed).
        succ = handles.get(next_ptr[0])
        if succ is not None and getattr(succ, "_phase", "waiting") != "waiting":
            return
        if p.shm_access_us > 0.0:
            yield self.env.timeout(p.shm_access_us)
        next_rank, next_base = next_ptr
        self.runtime.regions[next_rank].write(next_base + _OFF_LOCKED, _FALSE)

    # .. token algorithms (Naimi-Trehel, Raymond) ...................................

    def _recover_token(self, key: Tuple[str, str, int], dead: int, kind: str):
        """Coordinator-led reconfiguration: regenerate the token at a
        deterministic survivor and reset every survivor's pointers via
        injected ``view_change`` messages (star re-request topology)."""
        handles = self._locks[key]["handles"]
        alive_handles = {
            r: h for r, h in handles.items() if self._present(r)
        }
        if not alive_handles:
            return
        any_handle = next(iter(alive_handles.values()))
        tag = any_handle.tag
        token_safe_at = self._find_live_token(alive_handles, tag, kind)
        if token_safe_at is not None:
            new_holder = token_safe_at
            token_lost = False
        else:
            requesting = sorted(
                (getattr(h, "_requested_at", float("inf")), r)
                for r, h in alive_handles.items()
                if self._token_requesting(h, kind)
            )
            new_holder = requesting[0][1] if requesting else min(alive_handles)
            token_lost = True
        payload = {
            "epoch": self.epoch,
            "holder": new_holder,
            "alive": sorted(alive_handles),
            "token_lost": token_lost,
        }
        # Remember the regeneration so a rank excluded at this point can
        # replay the view change when it rejoins (it never receives the
        # sends below).
        self._token_regen[key] = (self.epoch, dict(payload))
        # Deliver the view change holder-first, then earliest requester
        # first, so the rebuilt request chain preserves arrival order of
        # the surviving requests.
        order = sorted(
            alive_handles,
            key=lambda r: (
                r != new_holder,
                getattr(alive_handles[r], "_requested_at", float("inf"))
                if self._token_requesting(alive_handles[r], kind)
                else float("inf"),
                r,
            ),
        )
        from ..locks.token_base import LockMessage

        comm = self.runtime.comms[new_holder]
        for rank in order:
            yield from comm.send(
                rank, LockMessage("view_change", new_holder, payload), tag=tag
            )

    @staticmethod
    def _token_requesting(handle, kind: str) -> bool:
        if kind == "naimi":
            return bool(handle.requesting)
        return "self" in handle.request_q or handle.using

    def _find_live_token(self, alive_handles, tag, kind) -> Optional[int]:
        """The survivor that holds (or is about to receive) the token."""
        token_kind = "token" if kind == "naimi" else "privilege"
        for rank in sorted(alive_handles):
            handle = alive_handles[rank]
            if kind == "naimi" and handle.has_token:
                return rank
            if kind == "raymond" and handle.holder == "self":
                return rank
            # A token message already delivered to the rank's mailbox but
            # not yet processed by its daemon still counts as safe.
            comm = self.runtime.comms[rank]
            for envelope in comm.mailbox.items:
                msg = getattr(envelope, "payload", None)
                if msg is None or getattr(msg, "tag", None) != tag:
                    continue
                if getattr(msg.payload, "kind", None) == token_kind:
                    return rank
        return None
