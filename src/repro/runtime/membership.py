"""Crash-stop membership: failure detection, epoch views, lock recovery.

The paper's synchronization operations assume every participant stays up:
a barrier waits for all ranks' credits, a lock queue hands the grant to
whatever ticket comes next, a token algorithm forwards requests along
pointers that may name a dead process.  This module adds the machinery a
crash-stop failure model needs on top of the existing stack:

* **Failure detection.**  Each live rank refreshes a per-rank *last heard*
  timestamp — implicitly with every fabric transmission it makes
  (piggybacked, zero-cost) and explicitly through a seeded, jittered
  heartbeat process that covers idle ranks.  A detector process scans the
  timestamps every ``membership_check_us`` and declares a rank dead after
  ``suspect_timeout_us`` of silence.  The reliable transport short-cuts
  the timeout: exhausting a frame's retry budget reports the peer
  straight to :meth:`MembershipService.suspect`.

* **Epoch-numbered views.**  Every declaration bumps the membership
  *epoch* and records the survivor set.  Protocol code tags exchanges
  with the epoch they started under and re-derives partner schedules from
  the current view when the epoch moves (see
  :mod:`repro.mp.collectives` and :mod:`repro.armci.barrier`).

* **Lease-based lock recovery.**  Lock acquisitions are recorded as
  leases (holder, ticket, epoch).  When the holder — or any queued
  waiter — dies, a per-algorithm recovery coordinator revokes the lease
  and splices the queue: ticket/hybrid/server locks skip dead ticket
  numbers, LH/MCS repair successor pointers (ghost-releasing on behalf
  of the dead), Naimi/Trehel and Raymond regenerate the token at a
  deterministic survivor via injected ``view_change`` messages.

* **Write-off accounting.**  A dead rank may have issued ``op_init``
  credits whose operations never reached the target server.  At kill
  time the service snapshots the rank's ``op_init`` array; survivors'
  barrier waits subtract the still-owed portion (snapshot minus the
  per-pair applied count maintained by :meth:`note_apply`).

**Disabled means absent**: the service is only constructed when the fault
plan schedules :class:`~repro.net.faults.ProcessCrash` events.  Every
hook in the fabric, server, locks, and collectives is a single ``is
None`` check, so fault-free runs are byte-identical to a build without
this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..net.message import Endpoint
from ..sim.core import Process

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import ClusterRuntime

__all__ = ["MembershipService", "Lease"]

#: Actor label used for membership events in RMCSan traces.
MEMBERSHIP_ACTOR = "membership"


@dataclass
class Lease:
    """One lock acquisition recorded for crash recovery."""

    key: Tuple[str, str, int]  # (kind, name, home_rank)
    holder: int
    ticket: Optional[int]
    acquired_at: float
    epoch: int


class MembershipService:
    """Per-runtime failure detector, view manager, and recovery engine."""

    def __init__(self, runtime: "ClusterRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.params = runtime.params
        self.topology = runtime.topology
        self.fabric = runtime.fabric
        self.monitor = getattr(runtime, "monitor", None)
        plan = self.params.faults
        self.plan = plan
        nprocs = self.topology.nprocs
        seed = plan.seed if plan.seed is not None else self.params.seed
        self._seed = seed

        #: Current membership epoch; bumped once per declared death.
        self.epoch = 0
        self._alive: Set[int] = set(range(nprocs))
        self._dead: Set[int] = set()
        #: Epoch -> survivor view (sorted tuple) at the time it started.
        self._views: Dict[int, Tuple[int, ...]] = {0: tuple(range(nprocs))}
        self._last_heard: Dict[int, float] = {r: 0.0 for r in range(nprocs)}
        #: Actual kill time / declaration time per rank (detection latency).
        self.crashed_at: Dict[int, float] = {}
        self.declared_at: Dict[int, float] = {}
        #: Nodes whose server was killed (machine crashes).
        self._killed_nodes: Set[int] = set()
        #: Nodes whose NIC co-processor was killed (NIC-only or machine).
        self._dead_nics: Set[int] = set()

        # Which ranks the plan will kill (node crashes expand to all hosted
        # ranks); heartbeats and the detector retire once every planned
        # death has been declared, so the event queue can drain.
        planned: Set[int] = set()
        for crash in plan.crashes:
            if crash.rank is not None:
                planned.add(crash.rank)
            elif crash.node is not None:
                planned.update(self.topology.ranks_on(crash.node))
            # NIC-only crashes kill no rank directly: the hosted ranks die
            # only if transport suspicion escalates the silent NIC to a
            # machine crash, so they are not *planned* deaths and must not
            # keep the heartbeat/detector loops alive waiting for them.
        self._planned_ranks = planned

        #: Process ownership: rank -> processes to cancel on its death.
        self._owned: Dict[int, List[Process]] = {}
        self._owner_of: Dict[Process, int] = {}

        #: Lock registry: (kind, name, home_rank) -> {"kind", "handles"}.
        self._locks: Dict[Tuple[str, str, int], Dict[str, Any]] = {}
        #: Active leases by lock key.
        self._leases: Dict[Tuple[str, str, int], Lease] = {}
        #: Revoked (dead) ticket numbers by lock cells (home_rank, base_addr).
        self._revoked_tickets: Dict[Tuple[int, int], Set[int]] = {}

        #: Per-(src, dst) count of remote write ops applied at the server.
        self._applied: Dict[Tuple[int, int], int] = {}
        #: Dead ranks' op_init arrays, snapshotted at kill time.
        self._op_init_snapshot: Dict[int, List[int]] = {}

        #: Completion ledger for crash-resilient collectives:
        #: instance key -> (value, epoch the instance completed under).
        self._ledger: Dict[Any, Tuple[Any, int]] = {}

        #: Recovery trail (chaosbench reporting + tests).
        self.recovery_log: List[Dict[str, Any]] = []
        self._subscribers: List[Any] = []
        self._installed = False

    def __repr__(self) -> str:
        return (
            f"<MembershipService epoch={self.epoch} "
            f"alive={len(self._alive)} dead={sorted(self._dead)}>"
        )

    # -- wiring ---------------------------------------------------------------

    def install(self) -> None:
        """Wrap process creation and start executors/heartbeats/detector."""
        if self._installed:  # pragma: no cover - wired once by the runtime
            return
        self._installed = True
        env = self.env
        # Chain through the environment's factory hook (Environment uses
        # __slots__); an already-installed factory (e.g. the RMCSan
        # monitor's actor inheritance) keeps working underneath ours.
        base_factory = env._process_factory

        def process_with_ownership(generator, name=None):
            owner = self._owner_of.get(env.active_process)
            if base_factory is not None:
                proc = base_factory(generator, name=name)
            else:
                proc = Process(env, generator, name=name)
            if owner is not None and owner not in self._dead:
                self._owner_of[proc] = owner
                self._owned.setdefault(owner, []).append(proc)
            return proc

        env._process_factory = process_with_ownership
        for crash in self.plan.crashes:
            env.process(self._crash_executor(crash), name=f"crash@{crash.at_us}")
        for rank in sorted(self._alive):
            proc = env.process(self._heartbeat_loop(rank), name=f"hb[{rank}]")
            self.adopt(proc, rank)
        env.process(self._detector_loop(), name="membership.detector")

    def adopt(self, proc: Process, rank: int) -> None:
        """Record that ``proc`` belongs to ``rank`` (killed with it)."""
        self._owner_of[proc] = rank
        self._owned.setdefault(rank, []).append(proc)

    # -- views ----------------------------------------------------------------

    def is_alive(self, rank: int) -> bool:
        return rank in self._alive

    def alive_ranks(self) -> Tuple[int, ...]:
        """The current survivor view (sorted)."""
        return self._views[self.epoch]

    def view(self, epoch: int) -> Tuple[int, ...]:
        """The survivor view recorded when ``epoch`` began."""
        return self._views[epoch]

    def node_dead(self, node: int) -> bool:
        """True once a machine crash of ``node`` has been declared."""
        if node not in self._killed_nodes:
            return False
        return all(r in self._dead for r in self.topology.ranks_on(node))

    def dead_ranks(self) -> Tuple[int, ...]:
        return tuple(sorted(self._dead))

    def subscribe(self, callback) -> None:
        """``callback(epoch)`` fires after every view change."""
        self._subscribers.append(callback)

    # -- liveness inputs -------------------------------------------------------

    def note_traffic(self, src_rank: Any) -> None:
        """Piggybacked liveness: any accepted fabric post refreshes the rank."""
        if src_rank in self._alive:
            self._last_heard[src_rank] = self.env.now

    def heartbeat(self, rank: int, now: float) -> None:
        if rank in self._alive:
            self._last_heard[rank] = now

    def suspect(self, endpoint: Endpoint, reason: str = "suspected") -> None:
        """Transport-level suspicion (retry budget exhausted on a peer)."""
        kind, which = endpoint
        if kind == "mp":
            self._declare_dead(which, reason=reason)
        elif kind in ("srv", "nic"):
            # A server (or NIC co-processor) that stopped acknowledging is
            # a machine crash: the node's ranks go with it.
            self._killed_nodes.add(which)
            for rank in self.topology.ranks_on(which):
                self._declare_dead(rank, reason=f"node {which}: {reason}")

    # -- crash execution -------------------------------------------------------

    def _crash_executor(self, crash):
        yield self.env.timeout(crash.at_us)
        if crash.rank is not None:
            self._kill_rank(crash.rank)
        elif crash.node is not None:
            self._kill_node(crash.node)
        else:
            self._kill_nic(crash.nic)

    def _kill_rank(self, rank: int) -> None:
        """Fail-stop a user process: cancel generators, silence the fabric."""
        if rank in self.crashed_at:
            return
        self.crashed_at[rank] = self.env.now
        armci = self.runtime.armcis.get(rank)
        if armci is not None:
            self._op_init_snapshot[rank] = list(armci.op_init)
        self.fabric.mark_dead(("mp", rank))
        if self.fabric.reliable is not None:
            # Fail-stop includes the rank's sender-side transport state:
            # no retransmissions from beyond the grave (frames already on
            # the wire may still land; write-off accounting is monotone).
            self.fabric.reliable.abandon_sender(rank)
        for proc in self._owned.get(rank, ()):
            if proc.is_alive and proc is not self.env.active_process:
                proc.kill()

    def _kill_node(self, node: int) -> None:
        """Machine crash: the server thread and every hosted rank die.

        Idempotent: a node crash scheduled after one of its ranks (or its
        NIC, or the whole node) already died simply kills whatever is
        still running — ``_kill_rank`` and ``_kill_nic`` each no-op on an
        already-dead target.
        """
        self._killed_nodes.add(node)
        server = self.runtime.servers.get(node)
        if server is not None and server._proc is not None and server._proc.is_alive:
            server._proc.kill()
        self.fabric.mark_dead(("srv", node))
        # The node's NIC dies with it: refuse frames addressed to it and
        # stop its co-processor so degraded NIC barriers terminate.
        self._kill_nic(node)
        for rank in self.topology.ranks_on(node):
            self._kill_rank(rank)

    def _kill_nic(self, node: int) -> None:
        """NIC-only crash: the co-processor dies, the host side survives.

        The ``("nic", node)`` endpoint is marked dead (frames from/to it
        are refused) and any in-flight offloaded-barrier epoch on the
        engine is abandoned.  The hosted ranks and the server stay up:
        detection is the reliable layer's job — peer NICs exhaust their
        retry budget against the silent endpoint and
        :meth:`suspect` escalates the node to a machine-crash declaration.
        Hosts that ring a doorbell on a dead local NIC degrade immediately
        to the resilient host exchange (see :mod:`repro.armci.barrier`).
        """
        if node in self._dead_nics:
            return
        self._dead_nics.add(node)
        if node in self._killed_nodes:
            # Machine crash: the whole node is declared dead, so peers must
            # stop retrying outright (mark_dead also abandons backlog).
            self.fabric.mark_dead(("nic", node))
        else:
            # NIC-only crash: the device goes *silent*.  Peers' frames are
            # swallowed unACKed so the reliable layer's retry exhaustion
            # escalates the silence into a machine-crash suspicion.
            self.fabric.blackhole(("nic", node))
        engines = getattr(self.fabric, "_nic_engines", None)
        if engines is not None and node in engines:
            engines[node].shutdown()
        if self.monitor is not None:
            self.monitor.emit(
                "nic_crashed", actor=MEMBERSHIP_ACTOR, node=node,
                at=self.env.now,
            )

    def nic_dead(self, node: int) -> bool:
        """True once ``node``'s NIC co-processor has been killed."""
        return node in self._dead_nics

    # -- detection -------------------------------------------------------------

    def _all_planned_declared(self) -> bool:
        return self._planned_ranks <= self._dead

    def _heartbeat_loop(self, rank: int):
        rng = random.Random(f"membership:{self._seed}:{rank}")
        interval = self.params.heartbeat_us
        if interval <= 0.0:  # heartbeats disabled: rely on traffic + retries
            return
        while not self._all_planned_declared():
            yield self.env.timeout(interval * (0.75 + 0.5 * rng.random()))
            if rank in self._dead:
                return
            self.heartbeat(rank, self.env.now)

    def _detector_loop(self):
        p = self.params
        check = p.membership_check_us if p.membership_check_us > 0.0 else p.heartbeat_us
        if check <= 0.0:  # pragma: no cover - degenerate configuration
            return
        while not self._all_planned_declared():
            yield self.env.timeout(check)
            now = self.env.now
            for rank in sorted(self._alive):
                if now - self._last_heard[rank] > p.suspect_timeout_us:
                    self._declare_dead(rank, reason="heartbeat silence")

    # -- declaration + view change ---------------------------------------------

    def _declare_dead(self, rank: int, reason: str) -> None:
        if rank not in self._alive:
            return
        now = self.env.now
        if rank not in self.crashed_at:
            # Suspected without a scheduled kill (e.g. a fully partitioned
            # link): enforce fail-stop so the suspected rank cannot act on
            # a view that no longer contains it.
            self._kill_rank(rank)
        self._alive.discard(rank)
        self._dead.add(rank)
        self.declared_at[rank] = now
        self.epoch += 1
        view = tuple(sorted(self._alive))
        self._views[self.epoch] = view
        if self.monitor is not None:
            node = self.topology.node_of(rank)
            self.monitor.emit(
                "proc_crashed",
                actor=MEMBERSHIP_ACTOR,
                rank=rank,
                node=node,
                node_crashed=node in self._killed_nodes,
                crashed_at=self.crashed_at[rank],
                declared_at=now,
                detect_latency_us=now - self.crashed_at[rank],
                reason=reason,
            )
            self.monitor.emit(
                "view_change",
                actor=MEMBERSHIP_ACTOR,
                epoch=self.epoch,
                alive=list(view),
                dead=sorted(self._dead),
            )
        # Revoke any lease the dead rank held.
        for key, lease in list(self._leases.items()):
            if lease.holder == rank:
                del self._leases[key]
                if self.monitor is not None:
                    self.monitor.emit(
                        "lease_revoked",
                        actor=MEMBERSHIP_ACTOR,
                        lock=f"{key[0]}:{key[1]}@{key[2]}",
                        rank=rank,
                        ticket=lease.ticket,
                        epoch=self.epoch,
                    )
        # Splice the dead rank out of every lock it participates in.
        for key in sorted(self._locks):
            if rank in self._locks[key]["handles"]:
                self.env.process(
                    self._recover_lock(key, rank),
                    name=f"recover:{key[0]}:{key[1]}:{rank}",
                )
        # Commit-or-abort for NIC barrier epochs, *before* hosts observe
        # the view change: a host woken by its subscriber callback must
        # already see its release fired if the epoch committed anywhere.
        self._resolve_nic_epochs()
        for callback in list(self._subscribers):
            callback(self.epoch)

    def _resolve_nic_epochs(self) -> None:
        """Finish NIC barrier epochs that committed on *some* engine.

        A crashed NIC can wedge peers in the inter-NIC stage-3 barrier
        after another engine already released its hosts.  Released hosts
        have moved on, so the wedged hosts must not degrade to the
        resilient host exchange (they would wait forever for the released
        ones).  Commitment on any engine implies every engine entered
        stage 3 — all remote operations drained — so completing the epoch
        for every live host is safe; with no commitment anywhere, all
        hosts degrade together and stay consistent.
        """
        engines = getattr(self.fabric, "_nic_engines", None)
        if not engines:
            return
        committed = set()
        for engine in engines.values():
            committed |= engine.committed
        for epoch in sorted(committed):
            for engine in engines.values():
                engine.force_release(epoch)

    # -- lock registry + leases ------------------------------------------------

    def lock_key(self, handle) -> Tuple[str, str, int]:
        return (handle.kind, handle.name, handle.home_rank)

    def register_lock(self, handle) -> None:
        """Called by every lock handle constructor (one entry per rank)."""
        key = self.lock_key(handle)
        info = self._locks.setdefault(key, {"kind": handle.kind, "handles": {}})
        info["handles"][handle.ctx.rank] = handle

    def lease_acquire(self, handle, ticket: Optional[int]) -> None:
        key = self.lock_key(handle)
        self._leases[key] = Lease(
            key=key,
            holder=handle.ctx.rank,
            ticket=ticket,
            acquired_at=self.env.now,
            epoch=self.epoch,
        )

    def lease_release(self, handle) -> None:
        key = self.lock_key(handle)
        lease = self._leases.get(key)
        if lease is not None and lease.holder == handle.ctx.rank:
            del self._leases[key]

    def lease_holder(self, key: Tuple[str, str, int]) -> Optional[int]:
        lease = self._leases.get(key)
        return lease.holder if lease is not None else None

    def skip_revoked(self, home_rank: int, base_addr: int, value: int) -> int:
        """Advance a ticket counter value past revoked (dead) tickets."""
        revoked = self._revoked_tickets.get((home_rank, base_addr))
        if not revoked:
            return value
        while value in revoked:
            value += 1
        return value

    # -- write-off accounting ----------------------------------------------------

    def note_apply(self, src_rank: int, dst_rank: int) -> None:
        """A server applied one remote write op from ``src`` to ``dst``."""
        pair = (src_rank, dst_rank)
        self._applied[pair] = self._applied.get(pair, 0) + 1

    def written_off(self, me: int) -> int:
        """Credits owed to ``me`` by dead ranks: operations they issued
        toward ``me``'s server — counted in the barrier totals either live
        or through their kill-time snapshot — that the server will never
        apply.  A straggler op that does land later bumps both ``op_done``
        and the applied count, so the stage-2 comparison stays monotone.
        """
        total = 0
        for dead, snapshot in self._op_init_snapshot.items():
            owed = snapshot[me] - self._applied.get((dead, me), 0)
            if owed > 0:
                total += owed
        return total

    def dead_contribution(self, epoch: int) -> List[int]:
        """Elementwise sum of kill-time ``op_init`` snapshots of ranks dead
        in ``epoch``'s view.

        The lowest survivor folds this into its stage-1 contribution so the
        allreduce totals stay cumulative over the *original* universe —
        the targets' ``op_done`` counters are lifetime-cumulative and
        already include everything dead ranks completed before crashing.
        """
        acc = [0] * self.topology.nprocs
        view = set(self._views.get(epoch, ()))
        for dead, snapshot in self._op_init_snapshot.items():
            if dead in view:
                continue  # will contribute live (or force a view change)
            for i, v in enumerate(snapshot):
                acc[i] += v
        return acc

    # -- completion ledger -------------------------------------------------------

    def ledger_put(self, inst: Any, value: Any, epoch: Optional[int] = None) -> None:
        self._ledger[inst] = (value, self.epoch if epoch is None else epoch)

    def ledger_get(self, inst: Any) -> Optional[Tuple[Any, int]]:
        return self._ledger.get(inst)

    # -- reporting ---------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        detections = [
            {
                "rank": rank,
                "crashed_at_us": self.crashed_at[rank],
                "declared_at_us": self.declared_at[rank],
                "detect_latency_us": self.declared_at[rank] - self.crashed_at[rank],
            }
            for rank in sorted(self.declared_at)
        ]
        return {
            "epoch": self.epoch,
            "alive": list(self.alive_ranks()),
            "dead": sorted(self._dead),
            "detections": detections,
            "recoveries": list(self.recovery_log),
        }

    # -- lock recovery coordinators ----------------------------------------------

    def _recover_lock(self, key: Tuple[str, str, int], dead: int):
        kind = self._locks[key]["kind"]
        started = self.env.now
        entry = {
            "lock": f"{key[0]}:{key[1]}@{key[2]}",
            "kind": kind,
            "dead_rank": dead,
            "declared_at_us": started,
            "recovered_at_us": None,
        }
        self.recovery_log.append(entry)
        if kind in ("ticket", "hybrid", "server"):
            yield from self._recover_ticket_family(key, dead)
        elif kind == "lh":
            yield from self._recover_lh(key, dead)
        elif kind == "mcs":
            yield from self._recover_mcs(key, dead)
        elif kind in ("naimi", "raymond"):
            yield from self._recover_token(key, dead, kind)
        entry["recovered_at_us"] = self.env.now
        entry["recovery_latency_us"] = self.env.now - started

    # .. ticket / hybrid / server ..................................................

    def _recover_ticket_family(self, key: Tuple[str, str, int], dead: int):
        """Skip dead ticket numbers; ghost-advance if the dead rank held it.

        A ticket from ``counter`` upward that no *live* handle owns and no
        live waiter is queued for belongs to a dead requester (or to a
        grant lost on its way to one): it is revoked and skipped.
        """
        handles = self._locks[key]["handles"]
        any_handle = next(iter(handles.values()))
        home_rank = any_handle.home_rank
        base_addr = any_handle.base_addr
        region = self.runtime.regions[home_rank]
        revoked = self._revoked_tickets.setdefault((home_rank, base_addr), set())
        server = self.runtime.servers[self.topology.node_of(home_rank)]
        waiters = server._lock_waiters.get((home_rank, base_addr), {})

        def note_revoked(ticket: int, rank: int = dead) -> None:
            revoked.add(ticket)
            if self.monitor is not None:
                # The sanitizer's FIFO check must know which ticket numbers
                # were spliced out of the queue by crash recovery.
                self.monitor.emit(
                    "lease_revoked",
                    actor=MEMBERSHIP_ACTOR,
                    lock=f"{key[0]}:{key[1]}@{key[2]}",
                    rank=rank,
                    ticket=ticket,
                    epoch=self.epoch,
                )

        # Drop queued requests from dead ranks.
        for ticket, req in list(waiters.items()):
            if req.src_rank in self._dead:
                note_revoked(ticket, req.src_rank)
                del waiters[ticket]
        if self.params.server_lock_op_us > 0.0:
            yield self.env.timeout(self.params.server_lock_op_us)
        counter_addr = base_addr + 1
        counter = region.read(counter_addr)
        next_ticket = region.read(base_addr)
        # A dead shm-spinner's ticket may sit *behind* a live holder or
        # waiter, where the contiguous head scan below cannot reach (it
        # stops at the first live ticket, and no later declaration re-runs
        # it).  Revoke every not-yet-served ticket owned by a dead rank
        # here so skip_revoked can hop over it when the survivor ahead of
        # it eventually releases.
        for rank, h in handles.items():
            if rank not in self._dead:
                continue
            ticket = getattr(h, "_my_ticket", -1)
            if ticket >= counter and ticket not in revoked:
                note_revoked(ticket, rank)
        live_tickets = {
            h._my_ticket
            for rank, h in handles.items()
            if rank in self._alive and getattr(h, "_my_ticket", -1) >= 0
        }
        new = counter
        while new < next_ticket and new not in live_tickets and new not in waiters:
            if new not in revoked:
                note_revoked(new)
            new += 1
        if new == counter:
            return
        # The counter write wakes local spinners through the region watcher.
        if self.params.shm_access_us > 0.0:
            yield self.env.timeout(self.params.shm_access_us)
        region.write(counter_addr, new)
        pending = waiters.pop(new, None)
        if pending is not None:
            server.stats.grants += 1
            server._current_key = None
            yield from server._reply(pending.src_rank, pending.reply, value=new)

    # .. LH ........................................................................

    def _recover_lh(self, key: Tuple[str, str, int], dead: int):
        """Repair the LH queue: ghost-release for a dead holder, or chain a
        ghost forwarder for a dead waiter (grant flows through its cell)."""
        from ..locks.lh import _GRANTED

        handle = self._locks[key]["handles"][dead]
        region = handle._region
        p = self.params
        phase = getattr(handle, "_phase", "idle")
        if phase == "held":
            if p.shm_access_us > 0.0:
                yield self.env.timeout(p.shm_access_us)
            region.write(handle._spin_cell, _GRANTED)
        elif phase == "waiting":
            # When the predecessor eventually grants the dead waiter,
            # forward the grant to whoever spins on the cell it published.
            yield from region.wait_until(
                handle._prev_cell,
                lambda v: v == _GRANTED,
                poll_detect_us=p.poll_detect_us,
            )
            if p.shm_access_us > 0.0:
                yield self.env.timeout(p.shm_access_us)
            region.write(handle._published_cell, _GRANTED)

    # .. MCS .......................................................................

    def _recover_mcs(self, key: Tuple[str, str, int], dead: int):
        """Splice a dead rank out of the MCS chain by direct region surgery."""
        from ..locks.mcs import _FALSE, _OFF_LOCKED, _OFF_NEXT, _TRUE
        from .memory import NULL_PTR

        handle = self._locks[key]["handles"][dead]
        phase = getattr(handle, "_phase", "idle")
        p = self.params
        if phase in ("held", "releasing"):
            # "releasing": killed mid-release — after entering _release()
            # but before the handoff put / tail CAS completed.  The ghost
            # release observes the region first and only repairs what is
            # still missing, so it is safe for every partial outcome.
            yield from self._mcs_ghost_release(key, handle, dead)
            return
        if phase != "waiting":
            return
        prev = getattr(handle, "_prev_ptr", None)
        if prev is None or tuple(prev) == NULL_PTR:
            return  # died before entering the queue
        prev_rank, prev_base = prev
        prev_region = self.runtime.regions[prev_rank]
        dead_region = self.runtime.regions[dead]
        nbase = handle.node_struct.base
        my_ptr = (dead, nbase)
        if p.shm_access_us > 0.0:
            yield self.env.timeout(p.shm_access_us)
        link = (
            prev_region.read(prev_base + _OFF_NEXT),
            prev_region.read(prev_base + _OFF_NEXT + 1),
        )
        if link != my_ptr:
            # The dead rank swapped the tail but never finished linking:
            # complete its enqueue so the predecessor's release can find a
            # successor (and arm the locked flag the handoff will clear).
            dead_region.write(nbase + _OFF_LOCKED, _TRUE)
            prev_region.write(prev_base + _OFF_NEXT, my_ptr[0])
            prev_region.write(prev_base + _OFF_NEXT + 1, my_ptr[1])
        # Wait for the predecessor's (eventual) handoff, then pass it on.
        yield from dead_region.wait_until(
            nbase + _OFF_LOCKED,
            lambda v: v == _FALSE,
            poll_detect_us=p.poll_detect_us,
        )
        yield from self._mcs_ghost_release(key, handle, dead)

    def _mcs_lost_linker(self, handles, dead_handle, my_ptr):
        """The live waiter whose enqueue link targeted ``my_ptr``, if its
        locked flag is already armed (so a ghost handoff cannot race the
        arming store).  At most one waiter can have swapped the tail to
        find ``my_ptr`` as its predecessor."""
        from ..locks.mcs import _OFF_LOCKED, _TRUE

        for rank, h in handles.items():
            if h is dead_handle or getattr(h, "_phase", "idle") != "waiting":
                continue
            prev = getattr(h, "_prev_ptr", None)
            if prev is None or tuple(prev) != my_ptr or rank not in self._alive:
                continue
            base = h.node_struct.base
            if self.runtime.regions[rank].read(base + _OFF_LOCKED) == _TRUE:
                return (rank, base)
        return None

    def _mcs_ghost_release(self, key: Tuple[str, str, int], handle, dead: int):
        """Perform (or finish) the dead rank's release on its behalf.

        Idempotent against a release the dead rank had already begun: every
        branch observes the region state first and only repairs what is
        still missing — a handoff put or tail CAS that was applied before
        the crash is never redone (rewriting a successor's ``locked`` flag
        after it moved on would grant a later acquisition spuriously).
        """
        from ..locks.mcs import _FALSE, _OFF_LOCKED, _OFF_NEXT
        from .memory import NULL_PTR

        p = self.params
        handles = self._locks[key]["handles"]
        dead_region = self.runtime.regions[dead]
        nbase = handle.node_struct.base
        my_ptr = (dead, nbase)
        home_region = self.runtime.regions[handle.home_rank]
        home_node = self.topology.node_of(handle.home_rank)
        lock_addr = handle.lock_addr

        def read_next():
            return (
                dead_region.read(nbase + _OFF_NEXT),
                dead_region.read(nbase + _OFF_NEXT + 1),
            )

        def linker_pending() -> bool:
            """Will anyone still write a link into the dead node's next?

            True for a waiter that enqueued directly behind the dead node
            (its own spin code or crash recovery will complete the link),
            and for a live waiter whose tail swap has not resolved yet —
            it may still turn out to have swapped behind the dead node.
            """
            for rank, h in handles.items():
                if h is handle or getattr(h, "_phase", "idle") != "waiting":
                    continue
                prev = getattr(h, "_prev_ptr", None)
                if prev is not None and tuple(prev) == my_ptr:
                    return True
                if prev is None and rank in self._alive:
                    return True
            return False

        if p.shm_access_us > 0.0:
            yield self.env.timeout(p.shm_access_us)
        next_ptr = read_next()
        if next_ptr == NULL_PTR:
            if p.shm_atomic_us > 0.0:
                yield self.env.timeout(p.shm_atomic_us)
            tail = (home_region.read(lock_addr), home_region.read(lock_addr + 1))
            if tail == my_ptr:
                # Still the tail with no successor: the dead rank's release
                # CAS never applied (or was never issued); perform it.
                home_region.write(lock_addr, NULL_PTR[0])
                home_region.write(lock_addr + 1, NULL_PTR[1])
                return
            if tail == NULL_PTR:
                # The dead rank's own release CAS already applied.
                return
            # The tail moved past the dead node.  Either a successor
            # swapped in behind it and has not linked yet (the link will
            # come), or the dead rank completed its release CAS before
            # crashing and the tail belongs to a fresh chain that owes the
            # dead node nothing.  Resolve by watching the link cell and
            # the waiting handles until one of the two becomes certain.
            dead_node = self.topology.node_of(dead)
            while True:
                next_ptr = read_next()
                if next_ptr != NULL_PTR:
                    break
                if self.node_dead(dead_node):
                    # The dead rank's whole node is down, so a live
                    # successor's link write — routed through that node's
                    # server — can never be applied; waiting for it would
                    # spin forever.  Complete the enqueue on the linker's
                    # behalf (idempotent: the original write is provably
                    # lost).  Only once the linker has armed its own
                    # locked flag, or the handoff below could race the
                    # arming store and be overwritten.
                    linker = self._mcs_lost_linker(handles, handle, my_ptr)
                    if linker is not None:
                        dead_region.write(nbase + _OFF_NEXT, linker[0])
                        dead_region.write(nbase + _OFF_NEXT + 1, linker[1])
                        continue
                if not linker_pending() or self.node_dead(home_node):
                    return  # nobody will ever link: release already done
                yield self.env.timeout(p.membership_poll_us)
        # Hand off — unless the dead rank's own handoff already landed and
        # the successor moved on (its locked flag may since be re-armed).
        succ = handles.get(next_ptr[0])
        if succ is not None and getattr(succ, "_phase", "waiting") != "waiting":
            return
        if p.shm_access_us > 0.0:
            yield self.env.timeout(p.shm_access_us)
        next_rank, next_base = next_ptr
        self.runtime.regions[next_rank].write(next_base + _OFF_LOCKED, _FALSE)

    # .. token algorithms (Naimi-Trehel, Raymond) ...................................

    def _recover_token(self, key: Tuple[str, str, int], dead: int, kind: str):
        """Coordinator-led reconfiguration: regenerate the token at a
        deterministic survivor and reset every survivor's pointers via
        injected ``view_change`` messages (star re-request topology)."""
        handles = self._locks[key]["handles"]
        alive_handles = {
            r: h for r, h in handles.items() if r in self._alive
        }
        if not alive_handles:
            return
        any_handle = next(iter(alive_handles.values()))
        tag = any_handle.tag
        token_safe_at = self._find_live_token(alive_handles, tag, kind)
        if token_safe_at is not None:
            new_holder = token_safe_at
            token_lost = False
        else:
            requesting = sorted(
                (getattr(h, "_requested_at", float("inf")), r)
                for r, h in alive_handles.items()
                if self._token_requesting(h, kind)
            )
            new_holder = requesting[0][1] if requesting else min(alive_handles)
            token_lost = True
        payload = {
            "epoch": self.epoch,
            "holder": new_holder,
            "alive": sorted(alive_handles),
            "token_lost": token_lost,
        }
        # Deliver the view change holder-first, then earliest requester
        # first, so the rebuilt request chain preserves arrival order of
        # the surviving requests.
        order = sorted(
            alive_handles,
            key=lambda r: (
                r != new_holder,
                getattr(alive_handles[r], "_requested_at", float("inf"))
                if self._token_requesting(alive_handles[r], kind)
                else float("inf"),
                r,
            ),
        )
        from ..locks.token_base import LockMessage

        comm = self.runtime.comms[new_holder]
        for rank in order:
            yield from comm.send(
                rank, LockMessage("view_change", new_holder, payload), tag=tag
            )

    @staticmethod
    def _token_requesting(handle, kind: str) -> bool:
        if kind == "naimi":
            return bool(handle.requesting)
        return "self" in handle.request_q or handle.using

    def _find_live_token(self, alive_handles, tag, kind) -> Optional[int]:
        """The survivor that holds (or is about to receive) the token."""
        token_kind = "token" if kind == "naimi" else "privilege"
        for rank in sorted(alive_handles):
            handle = alive_handles[rank]
            if kind == "naimi" and handle.has_token:
                return rank
            if kind == "raymond" and handle.holder == "self":
                return rank
            # A token message already delivered to the rank's mailbox but
            # not yet processed by its daemon still counts as safe.
            comm = self.runtime.comms[rank]
            for envelope in comm.mailbox.items:
                msg = getattr(envelope, "payload", None)
                if msg is None or getattr(msg, "tag", None) != tag:
                    continue
                if getattr(msg.payload, "kind", None) == token_kind:
                    return rank
        return None
