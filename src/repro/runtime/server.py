"""The ARMCI server thread (paper Figure 1).

One server thread runs per SMP node.  It owns a request mailbox registered
on the fabric as ``("srv", node)`` and serves put/get/accumulate/rmw/fence
requests *in FIFO order* on behalf of remote user processes, operating
directly on the memory regions of the user processes hosted on its node
(which it shares with them).

Two behaviours from the paper are modeled explicitly because the evaluation
depends on them:

* **Blocking receive / wake-up cost.**  "In order to reduce the processor
  usage by the server thread when the server is idle, the server will use
  blocking receives and sleep while waiting for incoming requests."  A
  request arriving at a sleeping server pays ``server_wake_us`` before any
  processing; back-to-back requests do not.

* **Completion counters.**  The server keeps an ``op_done`` counter per
  hosted process (the number of completed memory operations targeting that
  process's region), stored in shared memory so the local user process can
  poll it — this is stage 2 of the new ``ARMCI_Barrier()``.

The server also implements the server side of the *hybrid* lock algorithm
(ticket state lives in the home process's region; the queue of waiting
remote requesters lives here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..armci.requests import (
    AccRequest,
    FenceRequest,
    GetRequest,
    LockRequest,
    PutRequest,
    RmwRequest,
    UnlockRequest,
)
from ..net.fabric import Fabric
from ..net.message import Envelope, server_endpoint
from ..net.params import NetworkParams
from ..net.topology import Topology
from ..sim.core import Environment
from ..sim.primitives import Store
from . import atomics
from .memory import Region

__all__ = ["ServerThread", "ServerStats"]


@dataclass
class ServerStats:
    """Per-server activity counters."""

    requests: int = 0
    sleeps: int = 0
    wakes: int = 0
    #: Requests caught during the spin window (no wake cost paid).
    spins: int = 0
    #: Total µs the server spent processing (wake + dequeue + dispatch +
    #: copies + replies); divide by elapsed time for utilization.
    busy_us: float = 0.0
    puts: int = 0
    gets: int = 0
    accs: int = 0
    rmws: int = 0
    fences: int = 0
    locks: int = 0
    unlocks: int = 0
    grants: int = 0
    #: Retransmitted/duplicated requests caught by idempotent dispatch
    #: (never double-applied, never double-bumping ``op_done``).
    dup_requests: int = 0
    #: Cached responses re-sent for duplicates whose original reply was lost.
    replayed_replies: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)


class ServerThread:
    """Simulated per-node ARMCI server thread."""

    def __init__(
        self,
        env: Environment,
        node: int,
        fabric: Fabric,
        topology: Topology,
        params: NetworkParams,
        regions: Dict[int, Region],
    ):
        self.env = env
        self.node = node
        self.fabric = fabric
        self.topology = topology
        self.params = params
        #: All process regions in the system (the server touches only those
        #: hosted on its node, but resolves by rank).
        self.regions = regions
        self.mailbox = Store(env, name=f"srv{node}.mailbox")
        fabric.register(server_endpoint(node), self.mailbox)
        self.stats = ServerStats()
        #: True while blocked in the blocking receive with an empty queue.
        self.sleeping = False
        #: Shared-memory counters region: one op_done cell per hosted rank.
        self.counters = Region(env, owner_rank=-1, name=f"srv{node}.counters")
        self._op_done_addr: Dict[int, int] = {
            rank: self.counters.alloc(1, initial=0)
            for rank in topology.ranks_on(node)
        }
        #: Hybrid-lock wait queues: (home_rank, base_addr) -> ticket -> waiter.
        self._lock_waiters: Dict[Tuple[int, int], Dict[int, LockRequest]] = {}
        #: Idempotent dispatch (only when faults can duplicate requests):
        #: envelopes are deduplicated by (src_rank, fabric seq) so a
        #: retransmitted put/acc never double-applies or double-bumps
        #: ``op_done`` — a double bump silently corrupts stage 2 of the
        #: combined ARMCI_Barrier.
        self._dedup = params.faults is not None
        self._applied: set = set()
        #: NIC co-processor on this node (None until the NIC-offloaded
        #: barrier is first requested; see :mod:`repro.nic.engine`).  When
        #: attached, every op_done bump is DMA'd down to the NIC's mirror.
        self._nic_engine = None
        #: Crash-stop membership service (None unless the fault plan
        #: schedules ProcessCrash events; attached to the fabric before
        #: servers are built).
        self._membership = getattr(fabric, "_membership", None)
        #: RMCSan monitor (installed on env before the runtime is wired).
        self._monitor = getattr(env, "_sync_monitor", None)
        if self._monitor is not None:
            # op_done counters have release/acquire semantics: stage 2 of
            # the combined barrier polls them; they are not data cells.
            for addr in self._op_done_addr.values():
                self._monitor.mark_sync(self.counters, addr)
        #: At-most-once reply cache: dedup key -> (src_rank, event, value,
        #: payload_cells), used to re-send a response whose original was
        #: lost on the way back.
        self._reply_cache: Dict[Tuple[int, int], Tuple[int, Any, Any, int]] = {}
        self._current_key: Optional[Tuple[int, int]] = None
        self._proc = None

    def __repr__(self) -> str:
        return f"<ServerThread node={self.node} handled={self.stats.requests}>"

    # -- counters --------------------------------------------------------------

    def op_done_cell(self, rank: int) -> Tuple[Region, int]:
        """(region, addr) of the op_done counter for hosted process ``rank``."""
        try:
            return self.counters, self._op_done_addr[rank]
        except KeyError:
            raise ValueError(
                f"rank {rank} is not hosted on node {self.node}"
            ) from None

    def op_done(self, rank: int) -> int:
        region, addr = self.op_done_cell(rank)
        return region.read(addr)

    def _bump_op_done(self, rank: int) -> None:
        region, addr = self.op_done_cell(rank)
        value = region.read(addr) + 1
        region.write(addr, value)
        if self._monitor is not None:
            self._monitor.emit("op_done", rank=rank, value=value)
        if self._nic_engine is not None:
            self._nic_engine.mirror_push(rank, value)

    def _hosted_region(self, rank: int) -> Region:
        if self.topology.node_of(rank) != self.node:
            raise ValueError(
                f"request targets rank {rank}, which is hosted on node "
                f"{self.topology.node_of(rank)}, not this server's node {self.node}"
            )
        return self.regions[rank]

    # -- main loop ---------------------------------------------------------------

    def start(self):
        """Spawn the server loop process."""
        if self._proc is not None:
            raise RuntimeError(f"server {self.node} already started")
        self._proc = self.env.process(self._run(), name=f"server{self.node}")
        if self._monitor is not None:
            self._monitor.register_process(self._proc, f"s{self.node}")
        return self._proc

    def _run(self):
        p = self.params
        env = self.env
        mailbox = self.mailbox
        stats = self.stats
        spin_us = p.server_spin_us
        wake_us = p.server_wake_us
        proc_us = p.server_proc_us
        shm_us = p.shm_access_us
        o_recv_us = p.o_recv_us
        while True:
            get_ev = mailbox.get()
            if not get_ev.triggered and spin_us > 0.0:
                # Spin-then-block: busy-poll before giving up the CPU.  A
                # message arriving inside the window is picked up without
                # the wake-up penalty.
                spin_deadline = env.timeout(spin_us)
                yield get_ev | spin_deadline
                if not get_ev.triggered:
                    mailbox.cancel_get(get_ev)
                    get_ev = None
                else:
                    stats.spins += 1
            if get_ev is None:
                # Spun dry: block in the blocking receive.
                get_ev = mailbox.get()
            if not get_ev.triggered:
                self.sleeping = True
                stats.sleeps += 1
                envelope = yield get_ev
                self.sleeping = False
                stats.wakes += 1
                if wake_us > 0.0:
                    yield env.timeout(wake_us)
            else:
                envelope = yield get_ev
            busy_from = env.now
            dequeue_cost = shm_us if envelope.intra_node else o_recv_us
            if dequeue_cost > 0.0:
                yield env.timeout(dequeue_cost)
            if proc_us > 0.0:
                yield env.timeout(proc_us)
            stats.requests += 1
            req = envelope.payload
            name = type(req).__name__
            stats.by_type[name] = stats.by_type.get(name, 0) + 1
            if (
                type(req) is PutRequest
                and not self._dedup
                and self._monitor is None
            ):
                # _dispatch/_handle_put, inlined for the dominant request
                # type on the fault-free, unmonitored fast path (two fewer
                # generator frames per yield while applying the put).
                region = self._hosted_region(req.dst_rank)
                ncells = req.total_cells()
                cost = self._copy_cost(ncells)
                if cost > 0.0:
                    yield env.timeout(cost)
                if req.segments is not None:
                    for addr, values in req.segments:
                        region.write_many(addr, values)
                else:
                    region.write_many(req.addr, req.values)
                self._bump_op_done(req.dst_rank)
                if self._membership is not None:
                    self._membership.note_apply(req.src_rank, req.dst_rank)
                stats.puts += 1
                if req.ack is not None:
                    yield from self._reply(req.src_rank, req.ack, value=ncells)
            else:
                yield from self._dispatch(envelope)
            stats.busy_us += env.now - busy_from

    # -- request handlers -----------------------------------------------------

    def _dispatch(self, envelope: Envelope):
        if self._dedup:
            key = (envelope.src_rank, envelope.seq)
            if key in self._applied:
                self.stats.dup_requests += 1
                yield from self._replay_reply(key)
                return
            self._applied.add(key)
            self._current_key = key
        req = envelope.payload
        # RMCSan: bracket the application of an identified remote memory
        # operation — "apply" joins the issuer's clock (program order at
        # issue time orders the server's writes), "apply_done" snapshots the
        # server clock for the fence/barrier/completion edges.
        op_id = getattr(req, "san_id", None)
        if self._monitor is not None and op_id is not None:
            self._monitor.emit("apply", op_id=op_id)
        if isinstance(req, PutRequest):
            yield from self._handle_put(req)
        elif isinstance(req, GetRequest):
            yield from self._handle_get(req)
        elif isinstance(req, AccRequest):
            yield from self._handle_acc(req)
        elif isinstance(req, RmwRequest):
            yield from self._handle_rmw(req)
        elif isinstance(req, FenceRequest):
            yield from self._handle_fence(req)
        elif isinstance(req, LockRequest):
            yield from self._handle_lock(req)
        elif isinstance(req, UnlockRequest):
            yield from self._handle_unlock(req)
        else:
            raise TypeError(f"server {self.node}: unknown request {req!r}")
        if self._monitor is not None and op_id is not None:
            self._monitor.emit("apply_done", op_id=op_id)

    def _copy_cost(self, ncells: int) -> float:
        return ncells * Region.CELL_BYTES * self.params.mem_copy_per_byte_us

    def _replay_reply(self, key: Tuple[int, int]):
        """Re-send the cached response for a duplicate of an applied request.

        Requests without a response (fire-and-forget put/acc/unlock) cache
        nothing; duplicates of those are simply ignored.  If the original
        response already reached the requester, the duplicate needs no
        answer either.
        """
        cached = self._reply_cache.get(key)
        if cached is None:
            return
        src_rank, event, value, payload_cells = cached
        if event is None or event.triggered:
            return
        self.stats.replayed_replies += 1
        self._current_key = key
        yield from self._reply(src_rank, event, value, payload_cells=payload_cells)

    def _reply(self, req_src_rank: int, reply_event, value=None, payload_cells: int = 0):
        """Charge send overhead and post a response to the requester."""
        if payload_cells < 0:
            raise ValueError(f"payload_cells must be >= 0, got {payload_cells}")
        p = self.params
        same_node = self.topology.node_of(req_src_rank) == self.node
        overhead = p.shm_access_us if same_node else p.o_send_us
        if overhead > 0.0:
            yield self.env.timeout(overhead)
        if self._dedup and self._current_key is not None:
            self._reply_cache[self._current_key] = (
                req_src_rank,
                reply_event,
                value,
                payload_cells,
            )
        self.fabric.post_reply(
            self.node,
            req_src_rank,
            reply_event,
            value,
            payload_bytes=payload_cells * Region.CELL_BYTES,
        )

    def _handle_put(self, req: PutRequest):
        region = self._hosted_region(req.dst_rank)
        ncells = req.total_cells()
        cost = self._copy_cost(ncells)
        if cost > 0.0:
            yield self.env.timeout(cost)
        if req.segments is not None:
            for addr, values in req.segments:
                region.write_many(addr, values)
        else:
            region.write_many(req.addr, req.values)
        self._bump_op_done(req.dst_rank)
        if self._membership is not None:
            self._membership.note_apply(req.src_rank, req.dst_rank)
        self.stats.puts += 1
        if req.ack is not None:
            yield from self._reply(req.src_rank, req.ack, value=ncells)

    def _handle_get(self, req: GetRequest):
        region = self._hosted_region(req.dst_rank)
        ncells = req.total_cells()
        cost = self._copy_cost(ncells)
        if cost > 0.0:
            yield self.env.timeout(cost)
        if req.segments is not None:
            values: List[Any] = []
            for addr, count in req.segments:
                values.extend(region.read_many(addr, count))
        else:
            values = region.read_many(req.addr, req.count)
        self.stats.gets += 1
        yield from self._reply(
            req.src_rank, req.reply, value=values, payload_cells=ncells
        )

    def _handle_acc(self, req: AccRequest):
        region = self._hosted_region(req.dst_rank)
        # Accumulate reads and writes each cell: charge both directions.
        cost = 2 * self._copy_cost(len(req.values))
        if cost > 0.0:
            yield self.env.timeout(cost)
        atomics.accumulate(region, req.addr, req.values, req.scale)
        self._bump_op_done(req.dst_rank)
        if self._membership is not None:
            self._membership.note_apply(req.src_rank, req.dst_rank)
        self.stats.accs += 1
        if req.ack is not None:
            yield from self._reply(req.src_rank, req.ack, value=len(req.values))

    def _handle_rmw(self, req: RmwRequest):
        region = self._hosted_region(req.dst_rank)
        self.stats.rmws += 1
        op, args = req.op, req.args
        if op == "fetch_add":
            result = atomics.fetch_and_add(region, req.addr, *args)
        elif op == "swap":
            result = atomics.swap(region, req.addr, *args)
        elif op == "cas":
            result = atomics.compare_and_swap(region, req.addr, *args)
        elif op == "swap_pair":
            result = atomics.swap_pair(region, req.addr, *args)
        elif op == "cas_pair":
            result = atomics.compare_and_swap_pair(region, req.addr, *args)
        elif op == "read_pair":
            result = atomics.read_pair(region, req.addr)
        else:  # pragma: no cover - validated at request construction
            raise ValueError(f"unknown rmw op {op!r}")
        yield from self._reply(req.src_rank, req.reply, value=result, payload_cells=2)

    def _handle_fence(self, req: FenceRequest):
        # FIFO processing + in-order delivery mean every memory operation
        # this requester issued to this node before the fence has already
        # been completed; the server still pays to verify/flush its
        # per-client completion state before confirming (paper §3.1.1, GM
        # case).
        self.stats.fences += 1
        if self.params.server_fence_check_us > 0.0:
            yield self.env.timeout(self.params.server_fence_check_us)
        yield from self._reply(req.src_rank, req.reply, value=True)

    # -- hybrid lock server side ------------------------------------------------

    def _handle_lock(self, req: LockRequest):
        """Take a ticket on behalf of a remote requester (paper Figure 3)."""
        region = self._hosted_region(req.home_rank)
        self.stats.locks += 1
        if self.params.server_lock_op_us > 0.0:
            yield self.env.timeout(self.params.server_lock_op_us)
        ticket = atomics.fetch_and_add(region, req.base_addr, 1)
        counter = region.read(req.base_addr + 1)
        if ticket == counter:
            self.stats.grants += 1
            yield from self._reply(req.src_rank, req.reply, value=ticket)
        else:
            key = (req.home_rank, req.base_addr)
            self._lock_waiters.setdefault(key, {})[ticket] = req

    def _handle_unlock(self, req: UnlockRequest):
        """Increment the counter; grant the queued head if it now holds it."""
        region = self._hosted_region(req.home_rank)
        self.stats.unlocks += 1
        if self.params.server_lock_op_us > 0.0:
            yield self.env.timeout(self.params.server_lock_op_us)
        counter_addr = req.base_addr + 1
        new_counter = region.read(counter_addr) + 1
        if self._membership is not None:
            # Skip ticket numbers revoked by crash recovery (dead waiters).
            new_counter = self._membership.skip_revoked(
                req.home_rank, req.base_addr, new_counter
            )
        # The write wakes local pollers through the region watcher.
        region.write(counter_addr, new_counter)
        key = (req.home_rank, req.base_addr)
        waiters = self._lock_waiters.get(key)
        if waiters:
            pending = waiters.pop(new_counter, None)
            if pending is not None:
                if not waiters:
                    del self._lock_waiters[key]
                self.stats.grants += 1
                yield from self._reply(
                    pending.src_rank, pending.reply, value=new_counter
                )

    # -- introspection -----------------------------------------------------------

    def queued_lock_waiters(self, home_rank: int, base_addr: int) -> List[int]:
        """Tickets currently queued for a lock (diagnostics/tests)."""
        return sorted(self._lock_waiters.get((home_rank, base_addr), {}))
