"""Scenario fuzzer: randomized fault/crash/topology schedules.

The paper's protocols are exercised by hand-picked experiments elsewhere
in the tree; this package instead *searches* for schedules that break
them.  A single integer seed deterministically expands into a complete
scenario — workload, synchronization algorithm, link-fault mix, crash
schedule, topology — which runs under the RMCSan monitor plus a set of
workload-level invariant checks (survivor memory, mutual exclusion,
FIFO-among-survivors, completion).  Failures replay exactly from the
seed, shrink to a minimal still-failing schedule, and land in a
regression corpus replayed by the test suite.

Layering:

* :mod:`.scenario` — pure ``seed -> Scenario`` expansion + JSON codec,
* :mod:`.runner`   — run one scenario, collect violations,
* :mod:`.shrink`   — greedy minimization of a failing scenario,
* :mod:`.selftest` — seeded bug mutants that validate the oracle,
* :mod:`.campaign` — the fuzz loop, replay, and corpus management.
"""

from .campaign import (
    CampaignResult,
    replay_corpus,
    replay_seed,
    run_campaign,
)
from .runner import FuzzOutcome, run_scenario
from .scenario import Scenario, generate, scenario_from_json, scenario_to_json
from .selftest import MUTANTS, run_self_test
from .shrink import shrink

__all__ = [
    "CampaignResult",
    "FuzzOutcome",
    "MUTANTS",
    "Scenario",
    "generate",
    "replay_corpus",
    "replay_seed",
    "run_campaign",
    "run_scenario",
    "run_self_test",
    "scenario_from_json",
    "scenario_to_json",
    "shrink",
]
