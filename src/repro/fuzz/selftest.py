"""Oracle validation: seeded bug mutants the fuzzer must catch.

A fuzzer whose oracle is silently vacuous is worse than no fuzzer, so
``repro fuzz --self-test`` plants three historically-plausible bugs —
each a one-line patch against a different synchronization layer — and
requires the fuzzer to flag every one within a fixed seed budget:

* **hasty-nic** — the NIC firmware releases the barrier without waiting
  for its hosted ranks' ``op_done`` mirror to catch up (stage 2 of the
  offloaded combined barrier is skipped): puts can still be in flight
  when survivors read.
* **skipped-writeoff** — crash recovery stops writing off operations
  that dead ranks initiated but that will never be applied, so the
  resilient barrier's completion ledger never balances and survivors
  wait forever.
* **stale-token-epoch** — the token locks stop honoring the recovery
  epoch floor, so a stale in-flight token copy (superseded by lease
  recovery after the holder crashed) is accepted and two ranks hold
  the lock at once.

Each mutant carries a ``constrain`` dict steering :func:`..scenario.generate`
toward the protocol family it lives in — directed fuzzing, still a pure
function of the seed.  A catch only counts if the *unpatched* run of the
same scenario is clean, so the violation is attributable to the mutant
and not to scenario noise.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .runner import run_scenario
from .scenario import generate

__all__ = ["MUTANTS", "Mutant", "MutantResult", "SelfTestResult", "run_self_test"]


@contextlib.contextmanager
def _patched_hasty_nic():
    from ..nic.engine import NicEngine

    original = NicEngine._run_epoch

    def hasty(self, epoch, state):
        # Firmware bug: pretend every hosted rank's remote ops already
        # completed, skipping the stage-2 mirror wait entirely.
        for rank in self.hosted:
            self.mirror[rank] = 1 << 30
        return original(self, epoch, state)

    NicEngine._run_epoch = hasty
    try:
        yield
    finally:
        NicEngine._run_epoch = original


@contextlib.contextmanager
def _patched_skipped_writeoff():
    from ..runtime.membership import MembershipService

    original = MembershipService.written_off
    MembershipService.written_off = lambda self, me: 0
    try:
        yield
    finally:
        MembershipService.written_off = original


@contextlib.contextmanager
def _patched_stale_token_epoch():
    from ..locks.token_base import TokenLockBase

    # A data descriptor on the class shadows the per-instance attribute:
    # every read sees floor 0 (no token is ever considered stale) and
    # recovery's floor bumps are silently discarded.
    TokenLockBase._token_epoch_floor = property(
        lambda self: 0, lambda self, value: None
    )
    try:
        yield
    finally:
        del TokenLockBase._token_epoch_floor


@dataclass(frozen=True)
class Mutant:
    name: str
    description: str
    patch: Callable[[], Any]
    #: Directed-generation overrides (see :func:`..scenario.generate`).
    constrain: Dict[str, Any]


#: Every mutant also pins the transient axes off: a fuzzed partition or
#: stall window freezes traffic for its duration, which can mask the
#: microsecond-scale timing a seeded protocol bug needs to surface.
_NO_FAULTS: Dict[str, Any] = {
    "drop_rate": 0.0,
    "dup_rate": 0.0,
    "delay_rate": 0.0,
    "delay_spike_us": 0.0,
    "fault_links": (),
    "partitions": (),
    "stalls": (),
}

MUTANTS: Tuple[Mutant, ...] = (
    Mutant(
        name="hasty-nic",
        description="NIC releases the offloaded barrier before its hosted "
        "ranks' op_done mirror catches up",
        patch=_patched_hasty_nic,
        # A dropped put only lands after the reliable layer's ~60us retry,
        # while the NIC stages finish in microseconds — so skipping the
        # stage-2 mirror wait releases the barrier with the put in flight.
        constrain={
            "workload": "strips",
            "barrier_algorithm": "nic",
            "crashes": (),
            "drop_rate": 0.15,
            "dup_rate": 0.0,
            "delay_rate": 0.0,
            "delay_spike_us": 0.0,
            "fault_links": (),
            "partitions": (),
            "stalls": (),
            # Pinned flat: a fuzzed hierarchy reprices messages and can
            # mask the mutant's timing window (same rule as transients).
            "hier_arity": 0,
        },
    ),
    Mutant(
        name="skipped-writeoff",
        description="crash recovery stops writing off dead ranks' never-"
        "applied operations; the completion ledger drifts",
        patch=_patched_skipped_writeoff,
        # A rank dies mid-puts on a dropping network: a put whose frame
        # was dropped before the crash is never retransmitted (fail-stop
        # includes sender transport state), so its credit exists only as
        # a write-off — which the mutant discards.
        constrain={
            "workload": "strips",
            "barrier_algorithm": "exchange",
            "crashes": (("rank", 0, 35.0),),
            "drop_rate": 0.15,
            "dup_rate": 0.0,
            "delay_rate": 0.0,
            "delay_spike_us": 0.0,
            "fault_links": (),
            "partitions": (),
            "stalls": (),
            # Pinned flat: a fuzzed hierarchy reprices messages and can
            # mask the mutant's timing window (same rule as transients).
            "hier_arity": 0,
        },
    ),
    Mutant(
        name="stale-token-epoch",
        description="token locks accept in-flight token copies from before "
        "the last crash-recovery epoch",
        patch=_patched_stale_token_epoch,
        constrain={
            "workload": "locks",
            "lock_kind": "naimi",
            "procs_per_node": 1,
            "crashes": (("rank", 0, 100.0),),
            "drop_rate": 0.0,
            "dup_rate": 0.0,
            "delay_rate": 1.0,
            "delay_spike_us": 600.0,
            "fault_links": ((0, 1),),
            "partitions": (),
            "stalls": (),
            # Pinned flat: a fuzzed hierarchy reprices messages and can
            # mask the mutant's timing window (same rule as transients).
            "hier_arity": 0,
        },
    ),
)


@dataclass
class MutantResult:
    mutant: str
    caught: bool = False
    seed: Optional[int] = None
    seeds_tried: int = 0
    violation_kinds: Tuple[str, ...] = ()

    def render(self) -> str:
        if self.caught:
            return (
                f"[caught] {self.mutant}: seed {self.seed} "
                f"({self.seeds_tried} seed(s) tried) -> "
                f"{', '.join(self.violation_kinds)}"
            )
        return f"[MISSED] {self.mutant}: {self.seeds_tried} seed(s) tried"


@dataclass
class SelfTestResult:
    results: List[MutantResult] = field(default_factory=list)
    budget: int = 0

    def all_caught(self) -> bool:
        return all(r.caught for r in self.results)

    def render(self) -> str:
        lines = [
            f"== Fuzzer self-test: {len(self.results)} seeded mutants, "
            f"budget {self.budget} seed(s) each =="
        ]
        lines.extend(r.render() for r in self.results)
        lines.append(
            "ORACLE VALIDATED: every mutant caught"
            if self.all_caught()
            else "ORACLE GAP: some mutants survived the budget"
        )
        return "\n".join(lines)


def run_self_test(budget: int = 12, start_seed: int = 0) -> SelfTestResult:
    """Fuzz each seeded mutant for up to ``budget`` seeds.

    A mutant counts as caught when some scenario fails under the patch
    *and* passes without it.
    """
    out = SelfTestResult(budget=budget)
    for mutant in MUTANTS:
        result = MutantResult(mutant=mutant.name)
        for seed in range(start_seed, start_seed + budget):
            result.seeds_tried += 1
            scenario = generate(seed, constrain=mutant.constrain)
            with mutant.patch():
                patched = run_scenario(scenario)
            if patched.ok():
                continue
            clean = run_scenario(scenario)
            if not clean.ok():
                continue  # scenario fails on its own: not attributable
            result.caught = True
            result.seed = seed
            result.violation_kinds = patched.kinds()
            break
        out.results.append(result)
    return out
