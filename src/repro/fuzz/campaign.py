"""The fuzz loop: seed sweeps, replay, shrinking, and the corpus.

``run_campaign`` walks consecutive seeds, expanding and running each
scenario until one fails, the seed budget runs out, or the wall-clock
budget expires.  The first failure is (optionally) shrunk to a minimal
still-failing schedule; both the original and shrunken outcomes land in
the :class:`CampaignResult` and can be serialized for the CI artifact.

The **corpus** (``tests/fuzz/corpus/*.json``) holds full scenario JSON
— not bare seeds, because shrunken scenarios are hand-edited data no
seed expands to.  Every entry is a schedule that once exposed a real or
seeded bug; the tier-1 suite replays each one and expects it clean, so
a regression that re-introduces the bug fails the suite immediately.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from .runner import FuzzOutcome, run_scenario
from .scenario import Scenario, generate, scenario_from_json, scenario_to_json
from .shrink import ShrinkResult, shrink

__all__ = [
    "CampaignResult",
    "load_corpus_entry",
    "replay_corpus",
    "replay_seed",
    "run_campaign",
    "save_corpus_entry",
]


@dataclass
class CampaignResult:
    """What one fuzz campaign observed."""

    start_seed: int
    seeds_run: int = 0
    elapsed_s: float = 0.0
    failure: Optional[FuzzOutcome] = None
    shrunk: Optional[ShrinkResult] = None

    def ok(self) -> bool:
        return self.failure is None

    def to_json(self) -> str:
        data = {
            "start_seed": self.start_seed,
            "seeds_run": self.seeds_run,
            "ok": self.ok(),
        }
        if self.failure is not None:
            data["failing_seed"] = self.failure.scenario.seed
            data["failure"] = json.loads(self.failure.to_json())
        if self.shrunk is not None:
            data["shrunk"] = {
                "scenario": json.loads(scenario_to_json(self.shrunk.scenario)),
                "violations": self.shrunk.outcome.violations,
                "steps": self.shrunk.steps,
                "runs": self.shrunk.runs,
            }
        return json.dumps(data, sort_keys=True, indent=2)

    def render(self) -> str:
        lines = [
            f"== Fuzz campaign: {self.seeds_run} seed(s) from "
            f"{self.start_seed}, {self.elapsed_s:.1f}s =="
        ]
        if self.ok():
            lines.append("no invariant violations found")
            return "\n".join(lines)
        lines.append(self.failure.render())
        if self.shrunk is not None:
            sr = self.shrunk
            lines.append(
                f"shrunk in {sr.runs} run(s), {len(sr.steps)} reduction(s):"
            )
            for step in sr.steps:
                lines.append(f"  - {step}")
            lines.append("minimal schedule: " + scenario_to_json(sr.scenario))
            lines.append(
                "replay with: armci-repro fuzz --replay "
                f"{self.failure.scenario.seed}"
            )
        return "\n".join(lines)


def run_campaign(
    start_seed: int = 0,
    num_seeds: Optional[int] = 100,
    time_budget_s: Optional[float] = None,
    do_shrink: bool = True,
) -> CampaignResult:
    """Fuzz consecutive seeds until failure or budget exhaustion."""
    result = CampaignResult(start_seed=start_seed)
    t0 = time.monotonic()
    seed = start_seed
    while True:
        if num_seeds is not None and result.seeds_run >= num_seeds:
            break
        if (
            time_budget_s is not None
            and time.monotonic() - t0 >= time_budget_s
        ):
            break
        outcome = run_scenario(generate(seed))
        result.seeds_run += 1
        if not outcome.ok():
            result.failure = outcome
            if do_shrink:
                result.shrunk = shrink(outcome.scenario, outcome)
            break
        seed += 1
    result.elapsed_s = time.monotonic() - t0
    return result


def replay_seed(seed: int) -> FuzzOutcome:
    """Re-expand ``seed`` and run it: byte-identical to the original run."""
    return run_scenario(generate(seed))


def save_corpus_entry(path: Path, scenario: Scenario, note: str) -> None:
    payload = {
        "note": note,
        "scenario": json.loads(scenario_to_json(scenario)),
    }
    Path(path).write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")


def load_corpus_entry(path: Path) -> Tuple[str, Scenario]:
    payload = json.loads(Path(path).read_text())
    return payload.get("note", ""), scenario_from_json(
        json.dumps(payload["scenario"])
    )


def replay_corpus(corpus_dir: Path) -> List[Tuple[str, FuzzOutcome]]:
    """Run every corpus entry; a clean tree reports zero violations."""
    results: List[Tuple[str, FuzzOutcome]] = []
    for path in sorted(Path(corpus_dir).glob("*.json")):
        _note, scenario = load_corpus_entry(path)
        results.append((path.name, run_scenario(scenario)))
    return results
