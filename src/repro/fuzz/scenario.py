"""Deterministic seed -> scenario expansion.

A :class:`Scenario` is a complete, JSON-serializable description of one
fuzz run: topology, workload phases, synchronization algorithm, link
faults, and crash schedule.  :func:`generate` is a *pure function* of
``(seed, constrain)`` — the same inputs always yield the same scenario,
so any failure replays from its seed alone and corpus entries stay
meaningful across machines.

Legality rules (enforced by :func:`_legalize`, re-applied after any
directed ``constrain`` overrides so self-test mutants cannot produce an
unrunnable scenario):

* rank 0 / node 0 / NIC 0 never die — rank 0 is every lock's home and
  the lowest survivor that folds dead ranks' barrier contributions;
* at least two ranks survive the whole crash schedule;
* ``ticket``/``lh`` locks place every rank on one node (the algorithms
  require it) and therefore only take plain rank crashes;
* phase lists end with a barrier so the final memory check is fenced;
* scenarios always run the reliable delivery layer (drops/dups/delays
  are recovered, not silently lost — that is the property under test);
* partition windows are pairwise disjoint, never cut off node 0, and
  leave a strict majority of nodes connected even if every scheduled
  node crash lands on the majority side — so a majority component
  exists during every window and frozen minority ranks always thaw;
* stalls never pause rank 0 or a rank already scheduled to die.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "Scenario",
    "WORKLOADS",
    "generate",
    "scenario_from_json",
    "scenario_to_json",
]

#: Workload families the fuzzer composes phases from.
WORKLOADS = ("strips", "locks", "mixed")

#: Host barrier algorithms eligible for fuzzing ("auto" is excluded: its
#: per-rank cost-model choice is not a collective agreement and the CLI
#: documents it as unsafe under divergent views).
_BARRIERS = ("exchange", "linear", "nic")

#: Topology-aware barrier algorithms (:mod:`repro.topo.algorithms`),
#: drawn from a separate RNG stream so pre-existing seeds keep their
#: historical expansions.
_TOPO_BARRIERS = ("twolevel", "kary", "dissemination")

_LOCK_KINDS = ("ticket", "lh", "server", "hybrid", "mcs", "raymond", "naimi")

#: Lock algorithms that require all ranks on the lock's home node.
_LOCAL_LOCKS = ("ticket", "lh")


@dataclass(frozen=True)
class Scenario:
    """One fully-expanded fuzz scenario (pure data, JSON round-trips)."""

    seed: int
    nprocs: int = 4
    procs_per_node: int = 1
    workload: str = "strips"
    barrier_algorithm: str = "exchange"
    nic_algorithm: str = "exchange"
    lock_kind: Optional[str] = None
    #: Ordered phases; each is ``"puts"``, ``"lock"``, or ``"barrier"``.
    phases: Tuple[str, ...] = ("puts", "barrier")
    cells: int = 4
    lock_iters: int = 2
    #: Uniform per-transmission fault rates (reliable layer always on).
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_spike_us: float = 0.0
    #: If non-empty, faults apply only on these directed node pairs.
    fault_links: Tuple[Tuple[int, int], ...] = ()
    #: Crash schedule: ``(kind, target, at_us)`` with kind rank|node|nic.
    crashes: Tuple[Tuple[str, int, float], ...] = ()
    #: Partition windows: ``(nodes, from_us, until_us)`` — the node group
    #: is cut off from the rest for the half-open window, then heals.
    #: Legalization guarantees the remainder keeps a strict majority of
    #: nodes (even against scheduled node crashes) and windows are
    #: disjoint, so exactly one cut is active at a time.
    partitions: Tuple[Tuple[Tuple[int, ...], float, float], ...] = ()
    #: Transient process stalls: ``(rank, from_us, until_us)`` — the rank
    #: pauses (no crash) and resumes at the window end.
    stalls: Tuple[Tuple[int, float, float], ...] = ()
    #: Hierarchical topology: 0 = flat network, >= 2 = a two-level
    #: hierarchy with ``hier_arity`` nodes per leaf switch.
    hier_arity: int = 0

    def has_faults(self) -> bool:
        return any(
            r > 0.0 for r in (self.drop_rate, self.dup_rate, self.delay_rate)
        )

    def has_transients(self) -> bool:
        """Any partition or stall window (freeze/rejoin machinery active)."""
        return bool(self.partitions or self.stalls)

    def reorders_messages(self) -> bool:
        """Whether faults can reorder request arrival (unsoundness guard
        for the FIFO-among-survivors check)."""
        return self.drop_rate > 0.0 or self.dup_rate > 0.0 or self.delay_rate > 0.0

    def dead_ranks_planned(self) -> Tuple[int, ...]:
        """Ranks guaranteed dead by the schedule (nic kills excluded —
        NIC deaths only escalate to rank deaths when traffic hits them)."""
        ppn = self.procs_per_node
        dead = set()
        for kind, target, _at in self.crashes:
            if kind == "rank":
                dead.add(target)
            elif kind == "node":
                dead.update(range(target * ppn, (target + 1) * ppn))
        return tuple(sorted(d for d in dead if d < self.nprocs))


def scenario_to_json(scenario: Scenario) -> str:
    """Canonical JSON text (sorted keys, tuples as lists)."""
    return json.dumps(dataclasses.asdict(scenario), sort_keys=True)


def scenario_from_json(text: str) -> Scenario:
    data = json.loads(text)
    data["phases"] = tuple(data["phases"])
    data["fault_links"] = tuple((a, b) for a, b in data["fault_links"])
    data["crashes"] = tuple((k, t, float(at)) for k, t, at in data["crashes"])
    # Transient axes postdate the first corpus entries; default to none.
    data["partitions"] = tuple(
        (tuple(int(n) for n in nodes), float(f), float(u))
        for nodes, f, u in data.get("partitions", ())
    )
    data["stalls"] = tuple(
        (int(r), float(f), float(u)) for r, f, u in data.get("stalls", ())
    )
    # The topology axis also postdates the first corpus entries.
    data["hier_arity"] = int(data.get("hier_arity", 0))
    return Scenario(**data)


def generate(seed: int, constrain: Optional[Dict[str, Any]] = None) -> Scenario:
    """Expand ``seed`` into a scenario, deterministically.

    ``constrain`` overrides generated fields *before* legalization — the
    self-test uses it to steer generation toward the protocol family a
    seeded mutant lives in, without giving up determinism or legality.
    """
    rng = random.Random(f"fuzz:{seed}")
    choice: Dict[str, Any] = {"seed": seed}

    choice["nprocs"] = rng.choice((3, 4, 5, 6, 8))
    choice["procs_per_node"] = rng.choice((1, 1, 2))
    choice["workload"] = rng.choice(WORKLOADS)
    choice["barrier_algorithm"] = rng.choice(_BARRIERS)
    choice["nic_algorithm"] = rng.choice(("exchange", "tree"))
    choice["lock_kind"] = rng.choice(_LOCK_KINDS)
    choice["cells"] = rng.choice((2, 4, 8))
    choice["lock_iters"] = rng.choice((1, 2, 3))
    choice["phases"] = _pick_phases(rng, choice["workload"])

    # Link faults: half the scenarios are fault-free so crash handling is
    # also fuzzed on a clean network.
    if rng.random() < 0.5:
        for key in ("drop_rate", "dup_rate", "delay_rate", "delay_spike_us"):
            choice[key] = 0.0
        choice["fault_links"] = ()
    else:
        # Rates are capped so the reliable layer's retry budget cannot
        # plausibly exhaust against a *live* peer (which would read as a
        # false hang); crashed peers are detected via the same budget.
        choice["drop_rate"] = rng.choice((0.0, 0.05, 0.15))
        choice["dup_rate"] = rng.choice((0.0, 0.05, 0.15))
        choice["delay_rate"] = rng.choice((0.0, 0.2, 1.0))
        choice["delay_spike_us"] = (
            rng.choice((80.0, 200.0, 600.0)) if choice["delay_rate"] else 0.0
        )
        if rng.random() < 0.4:
            # Concentrate the faults on a few directed node pairs.
            nnodes = max(
                2, choice["nprocs"] // choice["procs_per_node"]
            )
            pairs = set()
            for _ in range(rng.choice((1, 2, 3))):
                a = rng.randrange(nnodes)
                b = rng.randrange(nnodes)
                if a != b:
                    pairs.add((a, b))
            choice["fault_links"] = tuple(sorted(pairs))
        else:
            choice["fault_links"] = ()

    choice["crashes"] = _pick_crashes(rng, choice)

    # Transient faults draw from a *separate* stream so pre-existing seeds
    # expand to the same topology/workload/crash schedule they always did.
    transient_rng = random.Random(f"fuzz-transient:{seed}")
    choice["partitions"] = _pick_partitions(transient_rng)
    choice["stalls"] = _pick_stalls(transient_rng)

    # Topology axis, also from its own stream: a minority of scenarios
    # run on a two-level hierarchy and/or swap in a topology-aware
    # barrier, leaving all other draws untouched.
    topo_rng = random.Random(f"fuzz-topo:{seed}")
    choice["hier_arity"] = (
        topo_rng.choice((2, 2, 4)) if topo_rng.random() < 0.3 else 0
    )
    if topo_rng.random() < 0.3 and choice["barrier_algorithm"] != "nic":
        choice["barrier_algorithm"] = topo_rng.choice(_TOPO_BARRIERS)

    if constrain:
        choice.update(constrain)
        if "workload" in constrain and "phases" not in constrain:
            # The phase list was drawn for the *unconstrained* workload;
            # re-derive it (seeded separately, still a pure function).
            choice["phases"] = _pick_phases(
                random.Random(f"fuzz-phases:{seed}"), choice["workload"]
            )
    return _legalize(choice)


def _pick_phases(rng: random.Random, workload: str) -> Tuple[str, ...]:
    if workload == "strips":
        return ("puts", "barrier") * rng.choice((1, 2, 3))
    if workload == "locks":
        return ("lock", "barrier") * rng.choice((1, 2))
    phases = []
    for _ in range(rng.choice((2, 3, 4))):
        phases.append(rng.choice(("puts", "lock", "barrier")))
    phases.append("barrier")
    return tuple(phases)


def _pick_crashes(
    rng: random.Random, choice: Dict[str, Any]
) -> Tuple[Tuple[str, int, float], ...]:
    n_crashes = rng.choice((0, 1, 1, 2))
    crashes = []
    for _ in range(n_crashes):
        kind = rng.choice(("rank", "rank", "rank", "node", "nic"))
        at_us = round(rng.uniform(20.0, 1500.0), 1)
        crashes.append((kind, 0, at_us))  # target filled by _legalize
    return tuple(crashes)


def _pick_partitions(
    rng: random.Random,
) -> Tuple[Tuple[Any, float, float], ...]:
    """Draw partition windows; node groups are size *hints* (ints) that
    :func:`_legalize` resolves against the final topology."""
    if rng.random() >= 0.25:
        return ()
    windows = []
    for _ in range(rng.choice((1, 1, 2))):
        from_us = round(rng.uniform(30.0, 1200.0), 1)
        duration = rng.choice((120.0, 300.0, 700.0))
        windows.append((rng.choice((1, 1, 2)), from_us, round(from_us + duration, 1)))
    return tuple(windows)


def _pick_stalls(rng: random.Random) -> Tuple[Tuple[int, float, float], ...]:
    if rng.random() >= 0.15:
        return ()
    from_us = round(rng.uniform(30.0, 1200.0), 1)
    duration = rng.choice((150.0, 400.0))
    return ((rng.randrange(64), from_us, round(from_us + duration, 1)),)


def _legalize(choice: Dict[str, Any]) -> Scenario:
    """Repair the choice dict into a runnable scenario (deterministic)."""
    rng = random.Random(f"fuzz-legalize:{choice['seed']}")
    nprocs = int(choice["nprocs"])
    ppn = int(choice["procs_per_node"])
    if nprocs % ppn:
        ppn = 1

    workload = choice["workload"]
    lock_kind = choice["lock_kind"]
    phases = tuple(choice["phases"])
    if workload == "strips" or "lock" not in phases:
        lock_kind = None
    if lock_kind in _LOCAL_LOCKS:
        ppn = nprocs  # single node: the algorithms require it
    if not phases or phases[-1] != "barrier":
        phases = phases + ("barrier",)

    nnodes = nprocs // ppn
    fault_links = tuple(
        (a, b)
        for a, b in choice["fault_links"]
        if a != b and a < nnodes and b < nnodes
    )

    # Crash schedule: assign targets sparing rank 0 / node 0 / NIC 0,
    # keep >= 2 survivors, one crash per target.
    crashes = []
    used_targets = set()
    planned_dead = set()
    single_node = nnodes <= 1
    for kind, target, at_us in choice["crashes"]:
        if kind in ("node", "nic") and single_node:
            kind = "rank"  # node 0 is protected; retarget to a rank
        if kind == "rank":
            candidates = [r for r in range(1, nprocs) if ("rank", r) not in used_targets]
            rng.shuffle(candidates)
            picked = None
            for r in candidates:
                if len(planned_dead | {r}) <= nprocs - 2:
                    picked = r
                    break
            if picked is None:
                continue
            planned_dead.add(picked)
            used_targets.add(("rank", picked))
            crashes.append(("rank", picked, at_us))
        else:
            candidates = [
                n for n in range(1, nnodes) if (kind, n) not in used_targets
            ]
            rng.shuffle(candidates)
            picked = None
            for n in candidates:
                hosted = set(range(n * ppn, (n + 1) * ppn))
                if len(planned_dead | hosted) <= nprocs - 2:
                    picked = n
                    break
            if picked is None:
                continue
            # NIC kills only escalate to rank deaths when traffic hits
            # the dead device, but budget for the worst case anyway so
            # two ranks always survive.
            planned_dead.update(range(picked * ppn, (picked + 1) * ppn))
            used_targets.add((kind, picked))
            crashes.append((kind, picked, at_us))
    crashes.sort(key=lambda c: (c[2], c[0], c[1]))

    # Partition windows (satellite of the partition-tolerance work): the
    # un-partitioned remainder must hold a *strict majority* of nodes even
    # if every scheduled node crash lands on the majority side, so the
    # minority never exceeds (surviving_nodes - 1) // 2 and node 0 (every
    # lock's home) is never cut off.  Windows are kept pairwise disjoint —
    # one active cut means exactly two components, so a majority always
    # exists and every frozen rank is guaranteed to thaw.
    node_crashes = sum(1 for k, _t, _at in crashes if k == "node")
    max_minority = (nnodes - node_crashes - 1) // 2
    partitions = []
    used_windows = []
    for nodes, from_us, until_us in choice.get("partitions", ()):
        if max_minority < 1:
            break
        from_us, until_us = float(from_us), float(until_us)
        if until_us <= from_us:
            continue
        if any(from_us < u and until_us > f for f, u in used_windows):
            continue
        if isinstance(nodes, int):
            size = max(1, min(nodes, max_minority))
            pool = list(range(1, nnodes))
            rng.shuffle(pool)
            group = tuple(sorted(pool[:size]))
        else:
            group = tuple(
                sorted({int(n) for n in nodes if 0 < int(n) < nnodes})
            )[:max_minority]
        if not group:
            continue
        used_windows.append((from_us, until_us))
        partitions.append((group, round(from_us, 1), round(until_us, 1)))
    partitions.sort(key=lambda p: (p[1], p[2], p[0]))

    # Stalls: never pause rank 0, one window per rank, windows well-formed.
    stalls = []
    stalled_ranks = set()
    for rank, from_us, until_us in choice.get("stalls", ()):
        if nprocs < 3:
            break  # a 2-rank run has no majority once one rank pauses
        from_us, until_us = float(from_us), float(until_us)
        if until_us <= from_us:
            continue
        rank = 1 + (int(rank) % (nprocs - 1))
        if rank in stalled_ranks or rank in planned_dead:
            continue
        stalled_ranks.add(rank)
        stalls.append((rank, round(from_us, 1), round(until_us, 1)))
    stalls.sort(key=lambda s: (s[1], s[0]))

    return Scenario(
        seed=int(choice["seed"]),
        nprocs=nprocs,
        procs_per_node=ppn,
        workload=workload,
        barrier_algorithm=choice["barrier_algorithm"],
        nic_algorithm=choice["nic_algorithm"],
        lock_kind=lock_kind,
        phases=phases,
        cells=int(choice["cells"]),
        lock_iters=int(choice["lock_iters"]),
        drop_rate=float(choice["drop_rate"]),
        dup_rate=float(choice["dup_rate"]),
        delay_rate=float(choice["delay_rate"]),
        delay_spike_us=float(choice["delay_spike_us"]),
        fault_links=fault_links,
        crashes=tuple(crashes),
        partitions=tuple(partitions),
        stalls=tuple(stalls),
        hier_arity=(
            int(choice.get("hier_arity", 0))
            if int(choice.get("hier_arity", 0)) >= 2
            else 0
        ),
    )
