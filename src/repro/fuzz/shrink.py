"""Greedy minimization of a failing scenario.

Given a scenario whose run produced violations, :func:`shrink` tries a
fixed repertoire of *reductions* — remove a crash entry, drop a fault
dimension (all drops, all dups, all delays, or one faulty link), delete
a workload phase, halve the lock iteration count or the put width — and
keeps any reduction under which the failure *persists*: the shrunken
run must still report at least one of the original violation kinds.
The loop restarts from the first reduction after every success and
stops at a fixpoint (or a run budget), so the result is a local minimum
reachable by single deletions — small enough to read, exact enough to
debug.

The shrunken scenario is no longer the pure expansion of its seed (its
fields have been edited), which is why corpus entries store the full
scenario JSON rather than a seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .runner import FuzzOutcome, run_scenario
from .scenario import Scenario

__all__ = ["ShrinkResult", "shrink"]


@dataclass
class ShrinkResult:
    """Minimal still-failing scenario plus the trail that led there."""

    scenario: Scenario
    outcome: FuzzOutcome
    original: Scenario
    steps: List[str]
    runs: int

    def reduced(self) -> bool:
        return self.scenario != self.original


def _candidates(scenario: Scenario) -> Iterator[Tuple[str, Scenario]]:
    """Single-deletion reductions, cheapest-to-biggest-win first."""
    for i, crash in enumerate(scenario.crashes):
        yield (
            f"drop crash {crash}",
            dataclasses.replace(
                scenario,
                crashes=scenario.crashes[:i] + scenario.crashes[i + 1:],
            ),
        )
    for i, link in enumerate(scenario.fault_links):
        yield (
            f"drop faulty link {link}",
            dataclasses.replace(
                scenario,
                fault_links=(
                    scenario.fault_links[:i] + scenario.fault_links[i + 1:]
                ),
            ),
        )
    for rate in ("drop_rate", "dup_rate", "delay_rate"):
        if getattr(scenario, rate) > 0.0:
            yield (f"zero {rate}", dataclasses.replace(scenario, **{rate: 0.0}))
    # Phases: never remove the final barrier (the memory audit needs it).
    for i in range(len(scenario.phases) - 1):
        phases = scenario.phases[:i] + scenario.phases[i + 1:]
        yield (
            f"drop phase {i} ({scenario.phases[i]})",
            dataclasses.replace(scenario, phases=phases),
        )
    if scenario.lock_iters > 1:
        yield (
            f"lock_iters {scenario.lock_iters} -> {scenario.lock_iters // 2}",
            dataclasses.replace(scenario, lock_iters=scenario.lock_iters // 2),
        )
    if scenario.cells > 1:
        yield (
            f"cells {scenario.cells} -> {scenario.cells // 2}",
            dataclasses.replace(scenario, cells=scenario.cells // 2),
        )


def _still_fails(outcome: FuzzOutcome, signature: Tuple[str, ...]) -> bool:
    """The reduction preserved at least one original violation kind."""
    return any(kind in signature for kind in outcome.kinds())


def shrink(
    scenario: Scenario,
    outcome: FuzzOutcome,
    max_runs: int = 200,
) -> ShrinkResult:
    """Greedily minimize ``scenario`` while its failure persists."""
    signature = outcome.kinds()
    current, current_outcome = scenario, outcome
    steps: List[str] = []
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for label, candidate in _candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            try:
                candidate_outcome = run_scenario(candidate)
            except Exception:  # a reduction that crashes the runner is void
                continue
            if _still_fails(candidate_outcome, signature):
                current, current_outcome = candidate, candidate_outcome
                steps.append(label)
                progress = True
                break  # restart the candidate scan from the top
    return ShrinkResult(
        scenario=current,
        outcome=current_outcome,
        original=scenario,
        steps=steps,
        runs=runs,
    )
