"""Execute one fuzz scenario and collect every invariant violation.

The oracle layers two kinds of checks over a monitored run:

* **RMCSan** — the happens-before engine's own verdict: data races,
  fence violations (a read that can observe a lost put), early barrier
  or NIC release, lock protocol violations, deadlock cycles.
* **Workload invariants** — end-state checks the event stream cannot
  express: every survivor finishes within the simulated-time cap (a
  stuck survivor is a lost wakeup or deadlock), every *live* peer's
  final puts are applied after the closing barrier, dead peers' slots
  are atomic (whole put or nothing), at most one rank ever sits in the
  lock's critical section among live holders, grant order is FIFO among
  survivors when the algorithm promises it *and* no fault can reorder
  request arrival, and every scheduled rank/node death is eventually
  declared by the membership service.

Everything is deterministic: the scenario seeds the fault RNG, so one
seed reproduces one outcome byte-for-byte (see
:meth:`FuzzOutcome.to_json`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..net.faults import (
    FaultPlan,
    LinkFaults,
    Partition,
    ProcessCrash,
    ProcessStall,
)
from ..net.params import NetworkParams, myrinet2000
from ..sim.core import CRASHED
from .scenario import Scenario

__all__ = ["FuzzOutcome", "SIM_CAP_US", "run_scenario"]

#: Hard simulated-time cap: generously above any legitimate completion
#: (crash times max out at 1.5ms; detection + recovery + the workload
#: finish within a few ms).  A program still running at the cap is hung.
SIM_CAP_US = 50_000.0

#: Lock algorithms whose grant order is FIFO in request-arrival order.
_FIFO_LOCKS = ("ticket", "lh", "server", "hybrid", "mcs")

#: Spacing between lock requests so request-send order equals
#: queue-arrival order on a fault-free network (see chaosbench).
_LOCK_STAGGER_US = 40.0
_CS_US = 5.0


@dataclass
class FuzzOutcome:
    """Everything one scenario run produced, violations first."""

    scenario: Scenario
    violations: List[Dict[str, Any]] = field(default_factory=list)
    survivors: Tuple[int, ...] = ()
    dead: Tuple[int, ...] = ()
    finished_us: float = 0.0
    events_analyzed: int = 0
    #: Timing-independent digest of the observable end state (survivors,
    #: memory contents, grant order, mutex verdict).  Used by RMCheck to
    #: deduplicate equivalent schedules; deliberately NOT part of
    #: :meth:`to_json` so replay byte-comparisons predating it still match.
    end_state_hash: str = ""

    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, message: str, **details: Any) -> None:
        entry: Dict[str, Any] = {"kind": kind, "message": message}
        if details:
            entry["details"] = {k: details[k] for k in sorted(details)}
        self.violations.append(entry)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({v["kind"] for v in self.violations}))

    def to_json(self) -> str:
        """Canonical JSON: identical text for identical replays."""
        from .scenario import scenario_to_json

        return json.dumps(
            {
                "scenario": json.loads(scenario_to_json(self.scenario)),
                "violations": self.violations,
                "survivors": list(self.survivors),
                "dead": list(self.dead),
                "finished_us": round(self.finished_us, 3),
                "events_analyzed": self.events_analyzed,
            },
            sort_keys=True,
        )

    def render(self) -> str:
        sc = self.scenario
        head = (
            f"seed {sc.seed}: {sc.workload} x{len(sc.phases)} phases, "
            f"{sc.nprocs} procs ({sc.procs_per_node}/node), "
            f"barrier={sc.barrier_algorithm}"
            + (f", topo=two_level({sc.hier_arity})" if sc.hier_arity else "")
            + (f", lock={sc.lock_kind}" if sc.lock_kind else "")
            + (f", crashes={list(sc.crashes)}" if sc.crashes else "")
            + (f", partitions={list(sc.partitions)}" if sc.partitions else "")
            + (f", stalls={list(sc.stalls)}" if sc.stalls else "")
            + (
                f", faults(drop={sc.drop_rate} dup={sc.dup_rate} "
                f"delay={sc.delay_rate})"
                if sc.has_faults()
                else ""
            )
        )
        if self.ok():
            return f"[ok] {head}"
        lines = [f"[FAIL] {head}"]
        for v in self.violations:
            lines.append(f"  [{v['kind']}] {v['message']}")
        return "\n".join(lines)


def _make_params(scenario: Scenario) -> NetworkParams:
    rates = dict(
        drop_rate=scenario.drop_rate,
        dup_rate=scenario.dup_rate,
        delay_rate=scenario.delay_rate,
        delay_spike_us=scenario.delay_spike_us,
    )
    crashes = tuple(
        ProcessCrash(
            at_us=at_us,
            rank=target if kind == "rank" else None,
            node=target if kind == "node" else None,
            nic=target if kind == "nic" else None,
        )
        for kind, target, at_us in scenario.crashes
    )
    if scenario.fault_links:
        default = LinkFaults()
        links = tuple(
            ((a, b), LinkFaults(**rates)) for a, b in scenario.fault_links
        )
    else:
        default = LinkFaults(**rates)
        links = ()
    partitions = tuple(
        Partition(nodes=tuple(nodes), from_us=f, until_us=u)
        for nodes, f, u in scenario.partitions
    )
    pauses = tuple(
        ProcessStall(rank=r, from_us=f, until_us=u)
        for r, f, u in scenario.stalls
    )
    plan = FaultPlan(
        default=default,
        links=links,
        crashes=crashes,
        partitions=partitions,
        pauses=pauses,
        seed=scenario.seed,
        reliable=True,
    )
    overrides: Dict[str, Any] = {
        "faults": plan,
        "nic_algorithm": scenario.nic_algorithm,
    }
    if scenario.hier_arity >= 2:
        from ..topo import two_level

        overrides["hierarchy"] = two_level(scenario.hier_arity)
    if scenario.crashes or scenario.has_transients():
        # Tight retry budget so a silent (crashed or cut-off) endpoint
        # exhausts its retransmissions — and escalates to suspicion — well
        # inside the cap.  Only with a crash/partition schedule: on a
        # merely-lossy network the default budget keeps false suspicion of
        # live peers negligible.
        overrides["retry_timeout_us"] = 30.0
        overrides["max_retries"] = 6
    if scenario.has_transients():
        # Partitioned runs exercise the adaptive estimator too (it is the
        # default in fault-bearing CLI runs); crash-only scenarios keep
        # the fixed timeout so historical corpus replays are unchanged.
        overrides["adaptive_retry"] = True
    return myrinet2000().with_(**overrides)


def _fuzz_workload(ctx, scenario: Scenario, shared: Dict[str, Any]):
    """Per-rank program: execute the scenario's phase list."""
    from ..locks import make_lock
    from ..runtime.memory import GlobalAddress

    env = ctx.env
    membership = ctx.membership
    cells = scenario.cells
    base = ctx.region.alloc_named(
        "fuzz.slots", ctx.nprocs * cells, initial=0
    )
    lock = None
    if scenario.lock_kind is not None:
        lock = make_lock(scenario.lock_kind, ctx, home_rank=0, name="fuzz")

    put_round = 0
    for phase in scenario.phases:
        if phase == "puts":
            put_round += 1
            value = 100 * (ctx.rank + 1) + put_round
            for peer in range(ctx.nprocs):
                if peer == ctx.rank:
                    continue
                yield from ctx.armci.put(
                    GlobalAddress(peer, base + ctx.rank * cells),
                    [value] * cells,
                )
        elif phase == "lock" and lock is not None:
            yield env.timeout(_LOCK_STAGGER_US * (ctx.rank + 1))
            for it in range(scenario.lock_iters):
                shared["requests"].append((env.now, ctx.rank, it))
                yield from lock.acquire()
                prev = shared["cs_owner"]
                if prev is not None:
                    if membership is not None and (
                        not membership.is_alive(prev)
                        or not membership.in_view(prev)
                    ):
                        # Holder died (or was partitioned away) in its CS;
                        # the lease was revoked and its effects quarantined.
                        shared["preemptions"].append((prev, ctx.rank, env.now))
                    else:
                        shared["mutex_ok"] = False
                shared["cs_owner"] = ctx.rank
                shared["grants"].append((env.now, ctx.rank, it))
                yield env.timeout(_CS_US)
                if shared["cs_owner"] == ctx.rank:
                    shared["cs_owner"] = None
                elif membership is None or membership.in_view(ctx.rank):
                    # A fenced (out-of-view) holder's stale CS exit is the
                    # expected quarantine, not a mutual-exclusion breach.
                    shared["mutex_ok"] = False
                    shared["cs_owner"] = None
                yield from lock.release()
        elif phase == "barrier":
            yield from ctx.armci.barrier(algorithm=scenario.barrier_algorithm)

    if membership is not None and scenario.has_transients():
        # Quiesce before auditing: wait until every live peer is back in
        # view (partitions healed, stalls resumed, rejoins resynced), then
        # fence with one more barrier so the minority's puts — flushed at
        # the heal — are ordered before the audit reads.  Without this the
        # audit races the flush by construction: the majority's barrier
        # wrote the cut-off ranks' contributions off.
        while not membership.in_view(ctx.rank) or any(
            membership.is_alive(p) and not membership.in_view(p)
            for p in range(ctx.nprocs)
        ):
            yield env.timeout(50.0)
        yield from ctx.armci.barrier(algorithm=scenario.barrier_algorithm)

    # Post-barrier memory audit: the final phase is always a barrier, so
    # every live peer's last puts round must be visible here.
    rounds = scenario.phases.count("puts")
    slots_ok = True
    dead_slots_ok = True
    slots: List[Any] = []
    for peer in range(ctx.nprocs):
        if peer == ctx.rank or rounds == 0:
            continue
        got = ctx.region.read_many(base + peer * cells, cells)
        slots.append([peer, list(got)])
        want = 100 * (peer + 1) + rounds
        if membership is None or (
            membership.is_alive(peer) and membership.in_view(peer)
        ):
            slots_ok = slots_ok and all(v == want for v in got)
        else:
            allowed = {0} | {100 * (peer + 1) + r for r in range(1, rounds + 1)}
            dead_slots_ok = dead_slots_ok and (
                got[0] in allowed and all(v == got[0] for v in got)
            )
    return {
        "rank": ctx.rank,
        "slots_ok": slots_ok,
        "dead_slots_ok": dead_slots_ok,
        "slots": slots,
        "finished_us": env.now,
    }


def run_scenario(
    scenario: Scenario,
    strategy: Any = None,
    sim_cap_us: Optional[float] = None,
) -> FuzzOutcome:
    """Run ``scenario`` under the monitor; return outcome + violations.

    ``strategy`` optionally installs a
    :class:`~repro.sim.core.SchedulerStrategy` on the runtime's
    environment before the run — RMCheck's handle for steering the
    schedule; ``None`` keeps the ordinary uncontrolled scheduler.
    ``sim_cap_us`` overrides :data:`SIM_CAP_US` (model-checking runs use a
    smaller cap since explored scenarios are tiny).
    """
    from ..analysis.monitor import SyncMonitor
    from ..runtime.cluster import ClusterRuntime

    cap = SIM_CAP_US if sim_cap_us is None else sim_cap_us
    outcome = FuzzOutcome(scenario=scenario)
    monitor = SyncMonitor()
    runtime = ClusterRuntime(
        scenario.nprocs,
        procs_per_node=scenario.procs_per_node,
        params=_make_params(scenario),
        monitor=monitor,
    )
    if strategy is not None:
        runtime.env._mc_strategy = strategy
    shared: Dict[str, Any] = {
        "requests": [],
        "grants": [],
        "preemptions": [],
        "cs_owner": None,
        "mutex_ok": True,
    }
    procs = runtime.spawn(_fuzz_workload, scenario, shared)
    try:
        runtime.env.run(until=cap)
    except Exception as exc:  # a daemon/server blew up: that IS a finding
        outcome.add(
            "exception",
            f"runtime crashed at {runtime.env.now:.1f}us: "
            f"{type(exc).__name__}: {exc}",
        )
    outcome.finished_us = runtime.env.now

    membership = runtime.membership
    alive = {
        r
        for r in range(scenario.nprocs)
        if membership is None or membership.is_alive(r)
    }
    declared_dead = tuple(membership.dead_ranks()) if membership else ()
    outcome.survivors = tuple(sorted(alive))
    outcome.dead = declared_dead

    # -- liveness: every live rank's program must have finished ----------
    stuck = sorted(
        rank
        for rank, proc in procs.items()
        if proc.is_alive and rank in alive
    )
    if stuck:
        outcome.add(
            "deadlock",
            f"live ranks {stuck} never finished within {cap:.0f}us "
            "(deadlock or lost wakeup)",
            stuck=stuck,
        )

    # -- program exceptions are oracle failures in their own right -------
    for rank, proc in procs.items():
        if proc.triggered and not proc.ok:
            outcome.add(
                "exception",
                f"rank {rank} raised {type(proc.value).__name__}: {proc.value}",
                rank=rank,
            )

    # -- scheduled rank/node deaths must be declared ---------------------
    planned = scenario.dead_ranks_planned()
    if planned:
        kill_time = {
            rank: min(
                at
                for kind, target, at in scenario.crashes
                if (kind == "rank" and target == rank)
                or (
                    kind == "node"
                    and rank // scenario.procs_per_node == target
                )
            )
            for rank in planned
        }
        outlived = set()
        for rank in planned:
            proc = procs[rank]
            result = proc.value if proc.triggered and proc.ok else None
            if isinstance(result, dict):
                if result["finished_us"] > kill_time[rank]:
                    # Finishing *before* the kill fires is legitimate
                    # (the crash hit a completed program); after is not.
                    outcome.add(
                        "membership",
                        f"rank {rank} was scheduled to die at "
                        f"{kill_time[rank]:.1f}us but finished normally "
                        f"at {result['finished_us']:.1f}us",
                        rank=rank,
                    )
                else:
                    outlived.add(rank)  # completed before its kill fired
        missing = sorted(set(planned) - set(declared_dead) - outlived)
        if missing:
            outcome.add(
                "membership",
                f"scheduled deaths {missing} never declared "
                f"(declared: {list(declared_dead)})",
                missing=missing,
            )

    # -- workload invariants over the finishers --------------------------
    finished = {
        rank: proc.value
        for rank, proc in procs.items()
        if proc.triggered and proc.ok and isinstance(proc.value, dict)
    }
    bad_memory = sorted(
        rank
        for rank, res in finished.items()
        if not (res["slots_ok"] and res["dead_slots_ok"])
    )
    if bad_memory:
        outcome.add(
            "memory",
            f"ranks {bad_memory} observed divergent memory after the final "
            "barrier (missing live puts or torn dead puts)",
            ranks=bad_memory,
        )
    if not shared["mutex_ok"]:
        outcome.add(
            "lock",
            "two live ranks held the lock simultaneously "
            "(critical-section owner cell was overwritten)",
        )
    if (
        scenario.lock_kind in _FIFO_LOCKS
        and not scenario.reorders_messages()
        and not scenario.has_transients()
        and not stuck
    ):
        request_order = [
            (rank, it)
            for _t, rank, it in shared["requests"]
            if rank in alive
        ]
        grant_order = [
            (rank, it) for _t, rank, it in shared["grants"] if rank in alive
        ]
        if request_order != grant_order:
            outcome.add(
                "lock-fifo",
                f"{scenario.lock_kind} grant order diverged from request "
                "order among survivors on an order-preserving network",
                requests=request_order,
                grants=grant_order,
            )

    # -- RMCSan verdict over the whole event stream ----------------------
    report = monitor.analyze()
    outcome.events_analyzed = report.events_analyzed
    for violation in report.violations:
        outcome.add(
            f"san-{violation.kind}",
            violation.message,
            time=round(violation.time, 3),
        )
    if report.suppressed:
        outcome.add(
            "san-suppressed",
            f"{report.suppressed} further RMCSan violation(s) suppressed",
        )

    outcome.violations.sort(key=lambda v: (v["kind"], v["message"]))
    outcome.end_state_hash = _end_state_hash(outcome, finished, shared, alive)
    return outcome


def _end_state_hash(
    outcome: FuzzOutcome,
    finished: Dict[int, Dict[str, Any]],
    shared: Dict[str, Any],
    alive: set,
) -> str:
    """Digest of the *timing-independent* observable end state.

    Excludes every wall/simulated-time quantity (finish times, grant
    timestamps): two schedules that land in the same final state — same
    survivors, same memory contents, same grant order among survivors —
    hash identically even when their event timings differ, which is what
    lets RMCheck's state deduplication collapse equivalent interleavings.
    """
    state = {
        "survivors": list(outcome.survivors),
        "dead": list(outcome.dead),
        "ranks": [
            [rank, res["slots_ok"], res["dead_slots_ok"], res.get("slots", [])]
            for rank, res in sorted(finished.items())
        ],
        "grants": [[r, it] for _t, r, it in shared["grants"] if r in alive],
        "mutex_ok": shared["mutex_ok"],
    }
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
