"""Cluster topology: placement of user processes onto SMP nodes.

The paper's testbed is a cluster of dual-SMP nodes; process placement matters
because intra-node communication bypasses the network, and because a lock can
be handed off with *zero* messages when the releaser and the next waiter
share a node (paper §3.2.2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["Topology"]


class Topology:
    """Maps process ranks to nodes.

    Parameters
    ----------
    nprocs:
        Total number of user processes (ranks ``0..nprocs-1``).
    procs_per_node:
        Block placement: ranks ``[k*procs_per_node, (k+1)*procs_per_node)``
        live on node ``k``.  The last node may be partially filled.
    placement:
        Alternatively, an explicit ``rank -> node`` list; overrides
        ``procs_per_node`` if given.
    """

    def __init__(
        self,
        nprocs: int,
        procs_per_node: int = 1,
        placement: Sequence[int] | None = None,
    ):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        if placement is not None:
            placement = list(placement)
            if len(placement) != nprocs:
                raise ValueError(
                    f"placement has {len(placement)} entries for {nprocs} ranks"
                )
            if any(n < 0 for n in placement):
                raise ValueError("node ids must be non-negative")
            # Nodes must be densely numbered 0..nnodes-1.
            used = sorted(set(placement))
            if used != list(range(len(used))):
                raise ValueError(
                    f"node ids must be dense 0..k-1, got {used}"
                )
            self._node_of = placement
            self.procs_per_node = max(
                placement.count(n) for n in used
            )
        else:
            if procs_per_node < 1:
                raise ValueError(
                    f"procs_per_node must be >= 1, got {procs_per_node}"
                )
            self.procs_per_node = procs_per_node
            self._node_of = [r // procs_per_node for r in range(nprocs)]
        self.nnodes = max(self._node_of) + 1
        self._ranks_on: List[List[int]] = [[] for _ in range(self.nnodes)]
        for rank, node in enumerate(self._node_of):
            self._ranks_on[node].append(rank)

    def __repr__(self) -> str:
        return (
            f"<Topology nprocs={self.nprocs} nnodes={self.nnodes} "
            f"ppn={self.procs_per_node}>"
        )

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank``."""
        self._check_rank(rank)
        return self._node_of[rank]

    def ranks_on(self, node: int) -> Tuple[int, ...]:
        """All ranks hosted on ``node``."""
        if not (0 <= node < self.nnodes):
            raise ValueError(f"node {node} out of range [0, {self.nnodes})")
        return tuple(self._ranks_on[node])

    def same_node(self, a: int, b: int) -> bool:
        """True if ranks ``a`` and ``b`` share an SMP node."""
        self._check_rank(a)
        self._check_rank(b)
        return self._node_of[a] == self._node_of[b]

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nprocs):
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
