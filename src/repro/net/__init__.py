"""Simulated cluster network: parameters, topology, fabric, faults, reliability."""

from .fabric import Fabric, FabricStats
from .faults import FaultInjector, FaultPlan, FaultStats, LinkFaults, StallWindow
from .message import Endpoint, Envelope, mp_endpoint, server_endpoint
from .params import (
    MSG_HEADER_BYTES,
    SMALL_MSG_BYTES,
    NetworkParams,
    gige,
    myrinet2000,
    quadrics_like,
)
from .reliable import ReliabilityError, ReliableDelivery
from .topology import Topology

__all__ = [
    "Endpoint",
    "Envelope",
    "Fabric",
    "FabricStats",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkFaults",
    "MSG_HEADER_BYTES",
    "NetworkParams",
    "ReliabilityError",
    "ReliableDelivery",
    "SMALL_MSG_BYTES",
    "StallWindow",
    "Topology",
    "gige",
    "mp_endpoint",
    "myrinet2000",
    "quadrics_like",
    "server_endpoint",
]
