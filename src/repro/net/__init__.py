"""Simulated cluster network: parameters, topology, and message fabric."""

from .fabric import Fabric, FabricStats
from .message import Endpoint, Envelope, mp_endpoint, server_endpoint
from .params import (
    MSG_HEADER_BYTES,
    SMALL_MSG_BYTES,
    NetworkParams,
    gige,
    myrinet2000,
    quadrics_like,
)
from .topology import Topology

__all__ = [
    "Endpoint",
    "Envelope",
    "Fabric",
    "FabricStats",
    "MSG_HEADER_BYTES",
    "NetworkParams",
    "SMALL_MSG_BYTES",
    "Topology",
    "gige",
    "mp_endpoint",
    "myrinet2000",
    "quadrics_like",
    "server_endpoint",
]
