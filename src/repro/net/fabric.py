"""Message fabric: delivery timing, NIC serialization, intra-node fast path.

The fabric turns "process X sends payload P to endpoint E" into a scheduled
delivery with a LogGP-style cost model:

* **Inter-node** (different SMP nodes): the message departs when the sending
  node's NIC is free, occupies it for ``size * per_byte_us`` (DMA
  serialization), then arrives ``inter_latency_us`` later (plus optional
  reordering jitter for failure-injection tests).
* **Intra-node** (user process to the server on its own node): delivered
  through a shared-memory queue after ``intra_latency_us``; no NIC.

CPU overheads are charged to the party that incurs them: senders pay
``o_send_us`` (inter) or ``shm_access_us`` (intra) inside the :meth:`send`
helper; mailbox receivers pay ``o_recv_us`` when they dequeue.  Replies
delivered to a bare event (:meth:`post_reply`) fold the receiver overhead
into the delivery delay, since the requester is blocked waiting for exactly
that event.

Fault injection and reliability.  With ``params.faults`` set, every
physical transmission passes through a seeded
:class:`~repro.net.faults.FaultInjector` (drops, duplicates, delay spikes,
server stall windows), and — when the plan asks for it — the
:class:`~repro.net.reliable.ReliableDelivery` layer restores exactly-once,
in-order delivery over the lossy links with ACKs, retransmissions, and a
receiver-side resequencer.  With ``params.faults`` left ``None`` (the
default) neither subsystem is constructed and the fabric is byte-identical
to a fault-free build; the jitter RNG keeps its own stream either way so
enabling faults never perturbs jitter sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..sim.core import Environment, Event
from ..sim.primitives import FilterStore, Store
from .faults import FaultInjector
from .message import Endpoint, Envelope
from .params import MSG_HEADER_BYTES, SMALL_MSG_BYTES, NetworkParams
from .reliable import ReliableDelivery
from .topology import Topology

__all__ = ["Fabric", "FabricStats"]


@dataclass
class FabricStats:
    """Aggregate traffic counters.

    ``messages``/``bytes``/``by_payload`` cover *logical* messages — posts
    and replies alike, counted once regardless of how many physical
    transmission attempts the reliable layer needed.  The reliability
    counters (``retransmits``, ``timeouts``, ``dup_suppressed``, ``acks``)
    measure the transport's extra work; they stay zero on a fault-free
    fabric.
    """

    messages: int = 0
    bytes: int = 0
    inter_node: int = 0
    intra_node: int = 0
    replies: int = 0
    by_payload: Dict[str, int] = field(default_factory=dict)
    #: Reliable layer: retransmission timer expiries (includes the final,
    #: budget-exhausted one).
    timeouts: int = 0
    #: Reliable layer: frames re-sent after an unacknowledged timeout.
    retransmits: int = 0
    #: Duplicate deliveries suppressed (receiver dedup, resequencer, or an
    #: already-triggered reply event).
    dup_suppressed: int = 0
    #: Acknowledgement frames sent by receivers.
    acks: int = 0
    #: Reliable layer: channels whose retry budget ran out — the peer was
    #: declared dead and the channel's backlog discarded (crash-stop
    #: suspicion; consumed by the membership failure detector).
    links_declared_dead: int = 0
    #: Messages refused because their source or destination endpoint
    #: belongs to a crashed process/server (the mailbox has gone dark).
    dropped_dead: int = 0
    #: Deliveries swallowed by a silently-crashed endpoint (dead NIC):
    #: dropped at arrival without an ACK, so the sender keeps retrying.
    blackholed: int = 0
    #: Reliable layer: frames whose retry budget exhausted during a
    #: transient fault window (partition / process pause) and were parked
    #: until the window closed instead of declaring the peer dead.
    retry_suspended: int = 0
    #: Adaptive retry: round-trip-time samples fed to the per-channel
    #: Jacobson estimator (first-attempt ACKs only, per Karn's rule).
    rtt_samples: int = 0

    def record(self, envelope: Envelope) -> None:
        self.messages += 1
        self.bytes += envelope.size_bytes
        if envelope.intra_node:
            self.intra_node += 1
        else:
            self.inter_node += 1
        key = type(envelope.payload).__name__
        self.by_payload[key] = self.by_payload.get(key, 0) + 1

    def record_reply(self, size_bytes: int, intra_node: bool) -> None:
        """Count a reply like any other message (plus the reply counter)."""
        self.replies += 1
        self.messages += 1
        self.bytes += size_bytes
        if intra_node:
            self.intra_node += 1
        else:
            self.inter_node += 1
        self.by_payload["Reply"] = self.by_payload.get("Reply", 0) + 1


class Fabric:
    """Delivers messages between registered endpoints with modeled timing."""

    def __init__(self, env: Environment, topology: Topology, params: NetworkParams):
        self.env = env
        self.topology = topology
        self.params = params
        self._mailboxes: Dict[Endpoint, Any] = {}
        self._nic_free = [0.0] * topology.nnodes
        #: Hierarchical topology (repro.topo): per-level latency/per-byte
        #: tables resolved once against the base params.  ``None`` (flat
        #: model) keeps _path_delay on the exact pre-hierarchy arithmetic.
        if params.hierarchy is not None:
            self._hier_caps = params.hierarchy.caps
            lat, per_byte = params.hierarchy.resolve(
                params.inter_latency_us, params.per_byte_us
            )
            self._hier_lat = lat
            self._hier_pb = per_byte
        else:
            self._hier_caps = None
        self._seq = 0
        # Hot-path alias of the topology's rank->node table (post/send
        # resolve nodes once per message; a list index beats a method call).
        self._rank_node = topology._node_of
        #: Jitter stream.  Seeded exactly as the historical single RNG so
        #: jitter sequences are unchanged; the fault injector draws from
        #: its own independent stream (see repro.net.faults).
        self._jitter_rng = random.Random(params.seed)
        self.faults: Optional[FaultInjector] = (
            FaultInjector(params.faults, params.seed)
            if params.faults is not None
            else None
        )
        self.reliable: Optional[ReliableDelivery] = (
            ReliableDelivery(self)
            if params.faults is not None and params.faults.reliable
            else None
        )
        self.stats = FabricStats()
        #: Endpoints of crashed processes/servers: transmissions from and
        #: to them are silently refused.  Empty unless the fault plan
        #: schedules ProcessCrash events, so the fast path is one falsy
        #: check.
        self._dead_endpoints: set = set()
        #: Endpoints that crashed *silently* (a dead NIC co-processor):
        #: posts to them are still accepted — the reliable layer must keep
        #: retransmitting until its retry budget exhausts and raises a
        #: membership suspicion — but every delivery is dropped unACKed.
        self._blackhole_endpoints: set = set()
        #: Membership failure detector, attached by the runtime when the
        #: fault plan schedules crashes; every accepted post refreshes the
        #: sender's liveness (heartbeat piggybacking).
        self._membership = None
        #: RMCheck per-stream ordinals: message identity that is stable
        #: across schedule reorderings (a global counter would shift with
        #: the interleaving).  Only touched when a scheduler strategy is
        #: installed.
        self._mc_ordinals: Dict[Any, int] = {}

    def _mc_ordinal(self, ident: Any) -> int:
        n = self._mc_ordinals.get(ident, 0)
        self._mc_ordinals[ident] = n + 1
        return n

    # -- crash-stop support ----------------------------------------------------

    def attach_membership(self, membership) -> None:
        self._membership = membership

    def mark_dead(self, endpoint: Endpoint) -> None:
        """Refuse all future traffic from/to ``endpoint``.

        Frames the reliable layer still holds for the endpoint are
        abandoned so retransmission timers stop re-arming.
        """
        self._dead_endpoints.add(endpoint)
        if self.reliable is not None:
            self.reliable.abandon(endpoint)

    def blackhole(self, endpoint: Endpoint) -> None:
        """Make ``endpoint`` a silent sink (crashed NIC co-processor).

        Unlike :meth:`mark_dead`, senders are *not* told: their frames are
        accepted and dropped at arrival without acknowledgement, so the
        reliable layer's retry exhaustion — the only way peers can detect
        a silent device — still fires and feeds the failure detector.
        """
        self._blackhole_endpoints.add(endpoint)

    def endpoint_dead(self, endpoint: Endpoint) -> bool:
        return (
            endpoint in self._dead_endpoints
            or endpoint in self._blackhole_endpoints
        )

    # -- endpoint registry ---------------------------------------------------

    def register(self, endpoint: Endpoint, mailbox: Any) -> None:
        """Register a Store/FilterStore to receive messages for ``endpoint``."""
        if endpoint in self._mailboxes:
            raise ValueError(f"endpoint {endpoint} already registered")
        if not isinstance(mailbox, (Store, FilterStore)):
            raise TypeError(f"mailbox must be a Store or FilterStore, got {mailbox!r}")
        self._mailboxes[endpoint] = mailbox

    def mailbox(self, endpoint: Endpoint) -> Any:
        try:
            return self._mailboxes[endpoint]
        except KeyError:
            raise KeyError(f"no mailbox registered for endpoint {endpoint}") from None

    def _dst_node(self, endpoint: Endpoint) -> int:
        kind, index = endpoint
        if kind == "srv":
            return index
        if kind == "mp":
            return self._rank_node[index]
        if kind == "nic":
            return index
        raise ValueError(f"unknown endpoint kind {kind!r}")

    # -- path timing ---------------------------------------------------------

    def _path_delay(
        self,
        src_node: int,
        dst_node: int,
        size_bytes: int,
        latency_us: Optional[float] = None,
    ) -> float:
        """Delay from "message handed to transport" to "in dst mailbox".

        Inter-node sends account NIC availability on the source node
        (serialization queueing) as part of the delay.  ``latency_us``
        overrides the wire latency (NIC-to-NIC frames skip the host-side
        bus crossings folded into ``inter_latency_us``).

        With ``params.hierarchy`` set, latency and per-byte cost come
        from the node pair's crossing level instead of the flat figures
        (see :mod:`repro.topo.hierarchy`).  An explicit ``latency_us``
        override (NIC-to-NIC frames) keeps the flat arithmetic: the NIC
        engines model a dedicated flat inter-NIC fabric.
        """
        p = self.params
        now = self.env._now
        if src_node == dst_node:
            return p.intra_latency_us
        depart = max(now, self._nic_free[src_node])
        if self._hier_caps is not None and latency_us is None:
            level = len(self._hier_caps) - 1
            for i, cap in enumerate(self._hier_caps):
                if src_node // cap == dst_node // cap:
                    level = i
                    break
            xfer = size_bytes * self._hier_pb[level]
            latency = self._hier_lat[level]
        else:
            xfer = p.xfer_time(size_bytes)
            latency = p.inter_latency_us if latency_us is None else latency_us
        self._nic_free[src_node] = depart + xfer
        delay = (depart - now) + xfer + latency
        if p.jitter_us > 0.0:
            delay += self._jitter_rng.uniform(0.0, p.jitter_us)
        return delay

    def wire_latency_override(self, src_rank: Any, dst: Endpoint) -> Optional[float]:
        """Reduced wire latency for NIC-to-NIC frames, else ``None``.

        NIC engines stamp their posts with a ``("nic", node)`` source, so
        a frame both originating and terminating on a NIC is identified
        without consulting the topology.
        """
        if dst[0] == "nic" and isinstance(src_rank, tuple):
            return self.params.nic_wire_latency_us
        return None

    # -- sending -------------------------------------------------------------

    def post(
        self,
        src_rank: int,
        dst: Endpoint,
        payload: Any,
        payload_bytes: int = SMALL_MSG_BYTES,
        src_node: Optional[int] = None,
    ) -> Envelope:
        """Hand a message to the transport *without* charging sender CPU.

        Returns the in-flight :class:`Envelope`.  Use :meth:`send` from
        process code; ``post`` exists for callers that account their own CPU
        time (e.g. the server thread batching a grant after its dispatch
        cost).
        """
        if src_node is None:
            src_node = self._rank_node[src_rank]
        dst_node = self._dst_node(dst)
        size = payload_bytes + MSG_HEADER_BYTES
        env = self.env
        if self._dead_endpoints and (
            dst in self._dead_endpoints or ("mp", src_rank) in self._dead_endpoints
        ):
            self.stats.dropped_dead += 1
            return Envelope(
                src_rank=src_rank,
                dst=dst,
                payload=payload,
                size_bytes=size,
                sent_at=env._now,
                deliver_at=env._now,
                seq=-1,
                intra_node=(src_node == dst_node),
            )
        if self._membership is not None:
            self._membership.note_traffic(src_rank)
        seq = self._seq
        self._seq = seq + 1
        now = env._now
        # Positional construction: post() runs once per message.
        envelope = Envelope(
            src_rank, dst, payload, size, now, now, seq, src_node == dst_node
        )
        self.stats.record(envelope)
        mailbox = self._mailboxes.get(dst)
        if mailbox is None:
            raise KeyError(f"no mailbox registered for endpoint {dst}")
        if self.reliable is not None and not envelope.intra_node:
            self.reliable.send_envelope(envelope, src_node, dst_node)
            return envelope
        delay = self._path_delay(
            src_node,
            dst_node,
            size,
            latency_us=self.wire_latency_override(src_rank, dst),
        )
        mc = env._mc_strategy is not None
        if mc:
            # RMCheck identity: (sender, per-sender-stream ordinal) names
            # this message identically in every interleaving.
            msg_id = (src_rank, self._mc_ordinal(("msg", src_rank, dst)))
        if self.faults is None:
            envelope.deliver_at = env._now + delay
            deliver = env.timeout(delay)
            if mc:
                deliver._mc_label = ("msg", dst, msg_id)
            deliver.callbacks.append(lambda _ev: mailbox.put(envelope))
            return envelope
        offsets = self.faults.delivery_offsets(
            src_node, dst_node, dst, env._now, delay, intra_node=envelope.intra_node
        )
        for i, offset in enumerate(offsets):
            copy = envelope if i == 0 else replace(envelope)
            copy.deliver_at = env._now + offset
            deliver = env.timeout(offset)
            if mc:
                deliver._mc_label = ("msg", dst, msg_id + (i,))
            deliver.callbacks.append(
                lambda _ev, c=copy: self._deliver_unless_blackholed(mailbox, c)
            )
        return envelope

    def _deliver_unless_blackholed(self, mailbox: Any, envelope: Envelope) -> None:
        """Unreliable fault-path delivery: dead-NIC endpoints eat frames."""
        if self._blackhole_endpoints and envelope.dst in self._blackhole_endpoints:
            self.stats.blackholed += 1
            return
        mailbox.put(envelope)

    def send(
        self,
        src_rank: int,
        dst: Endpoint,
        payload: Any,
        payload_bytes: int = SMALL_MSG_BYTES,
    ):
        """Sub-generator: charge sender CPU overhead, then post.

        Usage: ``env_msg = yield from fabric.send(rank, dst, payload)``.
        Returns the :class:`Envelope`.
        """
        src_node = self._rank_node[src_rank]
        dst_node = self._dst_node(dst)
        p = self.params
        overhead = p.shm_access_us if src_node == dst_node else p.o_send_us
        if overhead > 0.0:
            yield self.env.timeout(overhead)
        return self.post(src_rank, dst, payload, payload_bytes, src_node=src_node)

    def post_reply(
        self,
        src_node: int,
        dst_rank: int,
        reply_event: Event,
        value: Any = None,
        payload_bytes: int = SMALL_MSG_BYTES,
    ) -> None:
        """Deliver a response to a blocked requester.

        The requester supplied ``reply_event`` in its request and is blocked
        on it; delivery succeeds the event after the path delay plus the
        requester's receive overhead.  The caller (normally the server) must
        charge its own send CPU before calling.
        """
        p = self.params
        dst_node = self._rank_node[dst_rank]
        size = payload_bytes + MSG_HEADER_BYTES
        intra_node = src_node == dst_node
        if self._dead_endpoints and (
            ("srv", src_node) in self._dead_endpoints
            or ("mp", dst_rank) in self._dead_endpoints
        ):
            self.stats.dropped_dead += 1
            return
        self.stats.record_reply(size, intra_node)
        if self.reliable is not None and not intra_node:
            self.reliable.send_reply(
                src_node, dst_node, dst_rank, reply_event, value, size
            )
            return
        delay = self._path_delay(src_node, dst_node, size)
        if intra_node:
            delay += p.shm_access_us
        else:
            delay += p.o_recv_us
        env = self.env
        mc = env._mc_strategy is not None
        if mc:
            rep_id = (
                src_node,
                self._mc_ordinal(("rep", src_node, dst_rank)),
            )
        if self.faults is None:
            deliver = env.timeout(delay)
            if mc:
                # RMCheck transition label: reply delivery to the requester.
                deliver._mc_label = ("rep", ("mp", dst_rank), rep_id)
            deliver.callbacks.append(lambda _ev: reply_event.succeed(value))
            return
        apply_faults = self.params.faults.apply_to_replies and not intra_node
        if apply_faults:
            offsets = self.faults.delivery_offsets(
                src_node, dst_node, None, env.now, delay
            )
        else:
            offsets = [delay]
        for j, offset in enumerate(offsets):
            deliver = env.timeout(offset)
            if mc:
                deliver._mc_label = ("rep", ("mp", dst_rank), rep_id + (j,))
            deliver.callbacks.append(
                lambda _ev: self._trigger_reply(reply_event, value)
            )

    def _trigger_reply(self, reply_event: Event, value: Any) -> None:
        """Succeed a reply event, suppressing network-duplicated copies."""
        if reply_event.triggered:
            self.stats.dup_suppressed += 1
        else:
            reply_event.succeed(value)

    # -- introspection ---------------------------------------------------------

    def nic_busy_until(self, node: int) -> float:
        """Time at which ``node``'s NIC finishes its current backlog."""
        return self._nic_free[node]
