"""Network and host cost parameters.

All times are in microseconds of simulated time; all sizes in bytes.  The
parameter set is LogGP-flavored: a one-way wire latency, a per-byte cost
(NIC/DMA serialization), CPU send/receive overheads, plus the host-side
costs that dominate the paper's analysis — server request dispatch and the
cost of waking a server thread that sleeps in a blocking receive.

``myrinet2000()`` is calibrated to land the reproduction's figures near the
paper's 16-node Myrinet-2000 cluster (1 GHz dual-Pentium-III, 33 MHz/32-bit
PCI, GM); see DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .faults import FaultPlan
from ..topo.hierarchy import Hierarchy

__all__ = ["NetworkParams", "myrinet2000", "gige", "quadrics_like", "SMALL_MSG_BYTES", "MSG_HEADER_BYTES"]

#: Nominal size charged for small control messages (requests, grants, acks).
SMALL_MSG_BYTES = 64
#: Per-message header bytes added to every payload.
MSG_HEADER_BYTES = 32


@dataclass(frozen=True)
class NetworkParams:
    """Cost model for a cluster of SMP nodes.

    Attributes
    ----------
    inter_latency_us:
        One-way wire+NIC latency for a message between two nodes, excluding
        serialization (the per-byte term) and CPU overheads.
    per_byte_us:
        Serialization cost per byte on the sending NIC (1 / bandwidth).
    o_send_us:
        CPU overhead the sender pays per message (descriptor setup, GM send).
    o_recv_us:
        CPU overhead the receiver pays to dequeue a message.
    intra_latency_us:
        Delivery latency for messages between a user process and the server
        thread on the *same* node (shared-memory request queue).
    shm_access_us:
        Cost of one uncontended shared-memory read or write by a user
        process (cache-coherent load/store to the shared region).
    shm_atomic_us:
        Cost of one shared-memory atomic operation (fetch&add, swap, CAS)
        performed directly by a user process, including bus locking.
    poll_detect_us:
        Mean delay between a memory word being written and a process that is
        spin-polling on it observing the new value.
    server_proc_us:
        Server-thread CPU time to dispatch and execute one request, excluding
        data copying.
    server_wake_us:
        Extra cost paid when a request arrives while the server thread is
        asleep in a blocking receive (interrupt + scheduler wakeup).
    server_spin_us:
        Spin-then-block: after draining its queue the server busy-polls
        for this long before blocking; a request arriving within the
        window is handled without the wake-up cost (ARMCI servers did
        exactly this to trade CPU for latency).  0 = block immediately
        (the configuration the paper's analysis assumes).
    mem_copy_per_byte_us:
        Server-side memcpy cost per byte when completing a put/get/acc.
    server_fence_check_us:
        Extra server CPU to process a fence confirmation request: the
        server must verify/flush completion of every prior operation from
        that client before confirming (walks its per-client bookkeeping).
    server_lock_op_us:
        Extra server CPU per hybrid-lock request/unlock: ticket bookkeeping
        plus maintenance of the per-lock queue of waiting remote requesters
        (the server-side work the MCS lock eliminates).
    api_call_us:
        Client-library CPU overhead charged once per public ARMCI/lock API
        call (argument checking, address translation, descriptor setup in
        the 1 GHz Pentium-III era library stack).
    mp_call_us:
        Message-passing library (MPI) per-call CPU overhead, charged on
        each send and each receive — MPICH-GM's software stack was a
        significant part of barrier latency on this hardware.
    jitter_us:
        If > 0, each inter-node delivery gets a uniform extra delay in
        ``[0, jitter_us]``, which can reorder messages between a pair.  GM
        delivers in order, so this is 0 by default; tests use it for
        failure injection.  Richer misbehaviour (drops, duplicates, delay
        spikes, server stalls) lives in ``faults``, on its own RNG stream.
    send_credits:
        GM-style sender flow control: each (process, server) pair holds
        this many send tokens; a request consumes one and the server's
        completion returns it (paper §3.1.1: "put messages generate
        acknowledgement messages from the server for flow control").
        0 disables the limit (default — the paper's GM configuration
        relies on GM's own link-level flow control instead).
    seed:
        RNG seed for jitter (and, unless the fault plan carries its own
        seed, for the independent fault stream).
    faults:
        Optional :class:`repro.net.faults.FaultPlan`.  ``None`` (default)
        means a perfect network — the fabric takes the exact same code
        path as before the fault subsystem existed, so all fault-free
        results are byte-identical.  When set, the fabric injects the
        plan's drops/duplicates/delays/stalls and (if ``plan.reliable``)
        runs the ACK/retransmit layer of :mod:`repro.net.reliable`.
    retry_timeout_us:
        Reliable layer: time to wait for an acknowledgement before the
        first retransmission of a frame.
    retry_backoff:
        Reliable layer: multiplicative backoff applied to the retry
        timeout on each successive retransmission (>= 1).
    max_retries:
        Reliable layer and fence watchdog: attempts after which the
        transport gives up and raises (declaring the link/server dead)
        instead of retrying forever.
    adaptive_retry:
        Reliable layer: when True the retransmission timeout is estimated
        per channel from observed round-trip times (Jacobson-style EWMA of
        RTT and its variance, ``RTO = srtt + 4 * rttvar``), starting from
        ``retry_timeout_us`` until the first sample arrives and clamped to
        ``[adaptive_rto_min_us, adaptive_rto_max_us]`` with a deterministic
        per-channel jitter on the cap.  Off by default so existing fault
        configurations keep the fixed schedule byte-for-byte.
    adaptive_rto_min_us:
        Floor of the adaptive retransmission timeout (guards against a
        few fast ACKs collapsing the RTO under the real tail latency).
    adaptive_rto_max_us:
        Cap of the adaptive timeout *before* the per-channel jitter
        (which adds up to 10%); bounds how long a backed-off channel
        waits between probes during a long outage.
    watchdog_timeout_us:
        Protocol watchdogs (0 = disabled, the default): a fence waiting
        this long without a confirmation retransmits its request, and a
        barrier whose stage-2 ``op_done`` wait makes no progress for a
        full window degrades to the conservative AllFence path (see
        ``docs/fault_model.md``).
    heartbeat_us:
        Membership failure detector (active only when the fault plan
        schedules ``ProcessCrash`` events): interval at which each live
        rank refreshes its liveness with the detector.  Fabric traffic
        piggybacks the same refresh, so heartbeats only matter for idle
        processes.
    suspect_timeout_us:
        Silence threshold after which the detector declares a rank dead
        and bumps the membership epoch.  Must comfortably exceed
        ``heartbeat_us`` plus its jitter; larger values trade detection
        latency for immunity to slow paths.
    membership_check_us:
        Period of the detector's scan over last-heard timestamps.
    membership_poll_us:
        Poll granularity used by epoch-aware (crash-resilient) waits:
        collective receives and the barrier's stage-2 wait re-check the
        membership epoch at this interval so survivors notice a view
        change while blocked.
    nic_proc_us:
        NIC co-processor (LANai-style) CPU time per protocol step of the
        offloaded barrier: folding one contribution vector, building one
        send descriptor, or dequeuing one NIC-to-NIC frame.  The embedded
        processor is slower per instruction than the host, but each step
        skips the MPI stack, kernel wake-ups, and PCI doorbell crossings
        the host path pays (see ``docs/model.md``).
    nic_doorbell_us:
        Host CPU cost of ringing the NIC doorbell: one programmed-I/O
        write across the PCI bus posting a pre-built descriptor.
    nic_dma_us:
        Fixed cost of one host<->NIC DMA transaction (descriptor fetch +
        PCI bus acquisition), charged on each doorbell payload, each
        ``op_done`` mirror update, and the final completion write-back.
    nic_dma_per_byte_us:
        Per-byte cost of host<->NIC DMA across the PCI bus.
    nic_wire_latency_us:
        One-way latency for a NIC-to-NIC frame of the offloaded barrier.
        Lower than ``inter_latency_us``: the host-to-host figure includes
        a PIO doorbell + PCI DMA crossing on each end, which frames that
        originate and terminate in NIC SRAM never make.  On Myrinet-2000
        the raw fabric contributes only a couple of microseconds of the
        6.5 us end-to-end host latency.
    nic_algorithm:
        Inter-NIC topology for the offloaded barrier: ``"exchange"``
        (pairwise recursive doubling over nodes, the default) or
        ``"tree"`` (a binary combining tree — fewer total frames, more
        serialized depth).
    nic_offload:
        When True the ``auto`` barrier algorithm also considers the
        NIC-offloaded path (``algorithm="nic"`` can always be requested
        explicitly).  Off by default so existing configurations are
        byte-identical.
    hierarchy:
        Optional :class:`repro.topo.hierarchy.Hierarchy` describing the
        multi-level network above the SMP nodes (switch/rack/cluster
        tiers).  ``None`` (default) is the flat model: every inter-node
        message costs ``inter_latency_us`` regardless of distance, the
        exact pre-hierarchy code path, so all flat results are
        byte-identical.  When set, the fabric derives each message's
        latency and per-byte cost from the sender/receiver nodes'
        crossing level (per-level values inherit the flat figures
        unless overridden), and the ``auto`` barrier algorithm widens
        its comparison to the topology-aware candidates.
    tree_radix:
        Fan-out of the ``kary`` combining-tree barrier (children per
        tree node).  Matching it to ``procs_per_node`` aligns the leaf
        tier of the tree with SMP nodes under block placement.
    """

    inter_latency_us: float = 6.5
    per_byte_us: float = 0.004
    o_send_us: float = 0.9
    o_recv_us: float = 0.5
    intra_latency_us: float = 0.4
    shm_access_us: float = 0.12
    shm_atomic_us: float = 0.3
    poll_detect_us: float = 0.2
    server_proc_us: float = 1.1
    server_wake_us: float = 18.0
    server_spin_us: float = 0.0
    mem_copy_per_byte_us: float = 0.0012
    server_fence_check_us: float = 9.0
    server_lock_op_us: float = 3.5
    api_call_us: float = 1.5
    mp_call_us: float = 3.5
    jitter_us: float = 0.0
    send_credits: int = 0
    seed: int = 12345
    faults: Optional[FaultPlan] = None
    retry_timeout_us: float = 60.0
    retry_backoff: float = 2.0
    max_retries: int = 12
    adaptive_retry: bool = False
    adaptive_rto_min_us: float = 20.0
    adaptive_rto_max_us: float = 2000.0
    watchdog_timeout_us: float = 0.0
    heartbeat_us: float = 25.0
    suspect_timeout_us: float = 120.0
    membership_check_us: float = 20.0
    membership_poll_us: float = 5.0
    nic_proc_us: float = 2.2
    nic_doorbell_us: float = 0.6
    nic_dma_us: float = 1.5
    nic_dma_per_byte_us: float = 0.008
    nic_wire_latency_us: float = 2.6
    nic_algorithm: str = "exchange"
    nic_offload: bool = False
    hierarchy: Optional[Hierarchy] = None
    tree_radix: int = 4

    def __post_init__(self) -> None:
        for field_name in (
            "inter_latency_us",
            "per_byte_us",
            "o_send_us",
            "o_recv_us",
            "intra_latency_us",
            "shm_access_us",
            "shm_atomic_us",
            "poll_detect_us",
            "server_proc_us",
            "server_wake_us",
            "server_spin_us",
            "mem_copy_per_byte_us",
            "server_fence_check_us",
            "server_lock_op_us",
            "api_call_us",
            "mp_call_us",
            "jitter_us",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")
        if self.send_credits < 0:
            raise ValueError(
                f"send_credits must be non-negative, got {self.send_credits}"
            )
        for field_name in (
            "retry_timeout_us",
            "adaptive_rto_min_us",
            "watchdog_timeout_us",
            "heartbeat_us",
            "suspect_timeout_us",
            "membership_check_us",
            "membership_poll_us",
            "nic_proc_us",
            "nic_doorbell_us",
            "nic_dma_us",
            "nic_dma_per_byte_us",
            "nic_wire_latency_us",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")
        if self.nic_algorithm not in ("exchange", "tree"):
            raise ValueError(
                f"nic_algorithm must be 'exchange' or 'tree', got "
                f"{self.nic_algorithm!r}"
            )
        if self.retry_backoff < 1.0:
            raise ValueError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}"
            )
        if self.adaptive_rto_max_us < self.adaptive_rto_min_us:
            raise ValueError(
                f"adaptive_rto_max_us ({self.adaptive_rto_max_us}) must be >= "
                f"adaptive_rto_min_us ({self.adaptive_rto_min_us})"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got {self.faults!r}"
            )
        if self.hierarchy is not None and not isinstance(self.hierarchy, Hierarchy):
            raise TypeError(
                f"hierarchy must be a Hierarchy or None, got {self.hierarchy!r}"
            )
        if self.tree_radix < 2:
            raise ValueError(
                f"tree_radix must be >= 2, got {self.tree_radix}"
            )

    def with_(self, **changes) -> "NetworkParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def xfer_time(self, size_bytes: int) -> float:
        """NIC serialization time for a message of ``size_bytes``."""
        return size_bytes * self.per_byte_us

    def one_way(self, size_bytes: int = SMALL_MSG_BYTES) -> float:
        """Approximate end-to-end one-way time for an inter-node message.

        This is the analytic handbook number (o_send + serialization +
        latency + o_recv); the fabric computes the exact figure including
        NIC queueing.
        """
        return (
            self.o_send_us
            + self.xfer_time(size_bytes + MSG_HEADER_BYTES)
            + self.inter_latency_us
            + self.o_recv_us
        )


def myrinet2000(**overrides) -> NetworkParams:
    """Myrinet-2000 / GM on 33 MHz 32-bit PCI, circa 2002 (paper testbed)."""
    return NetworkParams().with_(**overrides) if overrides else NetworkParams()


def gige(**overrides) -> NetworkParams:
    """TCP over gigabit Ethernet of the same era: higher latency, costly host."""
    base = NetworkParams(
        inter_latency_us=45.0,
        per_byte_us=0.009,
        o_send_us=8.0,
        o_recv_us=6.0,
        server_proc_us=2.5,
        server_wake_us=25.0,
    )
    return base.with_(**overrides) if overrides else base


def quadrics_like(**overrides) -> NetworkParams:
    """A lower-latency interconnect (QsNet-like), for sensitivity studies."""
    base = NetworkParams(
        inter_latency_us=2.5,
        per_byte_us=0.0031,
        o_send_us=0.5,
        o_recv_us=0.3,
        server_proc_us=0.9,
        server_wake_us=7.0,
    )
    return base.with_(**overrides) if overrides else base


def _preset(name: str, **overrides) -> NetworkParams:
    """Look up a preset by name (used by the CLI)."""
    presets = {
        "myrinet2000": myrinet2000,
        "gige": gige,
        "quadrics": quadrics_like,
    }
    try:
        return presets[name](**overrides)
    except KeyError:
        raise ValueError(
            f"unknown network preset {name!r}; choose from {sorted(presets)}"
        ) from None
