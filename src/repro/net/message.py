"""Fabric message envelope and endpoint addressing.

An *endpoint* is a ``(kind, index)`` pair under which a mailbox is registered
with the fabric:

* ``("srv", node)`` — the ARMCI server thread's request queue on ``node``;
* ``("mp", rank)`` — the MPI-like message queue of user process ``rank``;
* ``("nic", node)`` — the programmable NIC co-processor's frame queue on
  ``node`` (registered lazily, only when the NIC-offloaded barrier runs).

The fabric is payload-agnostic; request/response dataclasses live with their
protocols (:mod:`repro.armci.requests`, :mod:`repro.mp.comm`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

__all__ = ["Endpoint", "Envelope", "server_endpoint", "mp_endpoint", "nic_endpoint"]

Endpoint = Tuple[str, int]


def server_endpoint(node: int) -> Endpoint:
    """Endpoint of the server thread on ``node``."""
    return ("srv", node)


def mp_endpoint(rank: int) -> Endpoint:
    """Endpoint of the message-passing queue of process ``rank``."""
    return ("mp", rank)


def nic_endpoint(node: int) -> Endpoint:
    """Endpoint of the programmable NIC co-processor on ``node``."""
    return ("nic", node)


@dataclass(slots=True)
class Envelope:
    """A message in flight (or delivered) on the fabric."""

    #: Issuing process rank.
    src_rank: int
    #: Destination endpoint key.
    dst: Endpoint
    #: Protocol payload (request dataclass, MP message, ...).
    payload: Any
    #: Wire size, including header.
    size_bytes: int
    #: Simulated time the send was initiated.
    sent_at: float
    #: Simulated time of delivery into the destination mailbox.
    deliver_at: float = 0.0
    #: Fabric-wide sequence number (stable tiebreaker, diagnostics).
    seq: int = field(default=-1)
    #: True if the message used the intra-node shared-memory path.
    intra_node: bool = False

    def __repr__(self) -> str:
        path = "intra" if self.intra_node else "inter"
        return (
            f"<Envelope #{self.seq} {self.src_rank}->{self.dst} {path} "
            f"{self.size_bytes}B {type(self.payload).__name__}>"
        )
