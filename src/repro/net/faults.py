"""Deterministic fault injection for the message fabric.

The paper's protocols (the combined ``ARMCI_Barrier()``, the hybrid and MCS
locks) are correct because GM guarantees reliable, in-order delivery
(paper §3.1.1).  This module makes that assumption *falsifiable*: a
:class:`FaultPlan` describes how a network misbehaves — per-link drop
probability, duplication, delay spikes, reordering windows, and timed
server stall/crash windows — and a :class:`FaultInjector` applies the plan
to every physical transmission the fabric makes.

Design rules:

* **Disabled means absent.**  ``NetworkParams.faults`` defaults to ``None``;
  the fabric then never constructs an injector, draws no random numbers,
  and is byte-identical to a fault-free build.  Enabling faults must not
  perturb any other stochastic stream (delivery jitter keeps its own RNG).

* **Seeded and deterministic.**  All fault decisions come from one
  ``random.Random`` seeded from ``FaultPlan.seed`` (falling back to the
  network seed).  The same plan over the same workload produces the same
  drops, duplicates, and delays on every run.

* **The network lies; memory does not.**  Faults apply to inter-node
  transmissions (and, for stall/crash windows, to deliveries addressed to
  the stalled node's server).  The intra-node shared-memory queue stays
  reliable, as real SMP request queues are.

Recovery from injected faults is the job of :mod:`repro.net.reliable`
(ACK/retransmit/resequencing) and the protocol watchdogs in
:mod:`repro.armci.fence` / :mod:`repro.armci.barrier`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .message import Endpoint

__all__ = [
    "LinkFaults",
    "StallWindow",
    "ProcessCrash",
    "Partition",
    "ProcessStall",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
]


@dataclass(frozen=True)
class LinkFaults:
    """Per-link misbehaviour probabilities (each transmission attempt).

    Attributes
    ----------
    drop_rate:
        Probability a transmission is silently lost.
    dup_rate:
        Probability a transmission is delivered twice (the ghost copy
        arrives after an extra uniform delay in ``[0, dup_lag_us]``).
    delay_rate / delay_spike_us:
        Probability of a delay spike, and the spike magnitude added to the
        nominal delivery time (models a congested switch port or a link
        retraining pause).
    reorder_rate / reorder_window_us:
        Probability of an extra uniform delay in ``[0, reorder_window_us]``,
        which reorders the message against its neighbours (a softer, more
        frequent perturbation than a full spike).
    dup_lag_us:
        Upper bound of the duplicate copy's extra lag.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_spike_us: float = 0.0
    reorder_rate: float = 0.0
    reorder_window_us: float = 0.0
    dup_lag_us: float = 5.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "delay_rate", "reorder_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("delay_spike_us", "reorder_window_us", "dup_lag_us"):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    @property
    def active(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.dup_rate > 0.0
            or self.delay_rate > 0.0
            or self.reorder_rate > 0.0
        )


@dataclass(frozen=True)
class StallWindow:
    """A timed outage of one node's server.

    A message due to arrive at ``("srv", node)`` inside ``[start_us,
    end_us)`` is either *held* until the window closes (``mode="stall"``:
    the server thread is descheduled / wedged, then resumes with its
    backlog) or *dropped* (``mode="crash"``: the server restarts and loses
    everything that was in flight to it).
    """

    node: int
    start_us: float
    end_us: float
    mode: str = "stall"

    def __post_init__(self) -> None:
        if self.mode not in ("stall", "crash"):
            raise ValueError(f"mode must be 'stall' or 'crash', got {self.mode!r}")
        if self.start_us < 0.0 or self.end_us <= self.start_us:
            raise ValueError(
                f"need 0 <= start_us < end_us, got [{self.start_us}, {self.end_us})"
            )

    def covers(self, when: float) -> bool:
        return self.start_us <= when < self.end_us


@dataclass(frozen=True)
class ProcessCrash:
    """A permanent crash-stop failure injected at a point in time.

    Exactly one of ``rank`` / ``node`` / ``nic`` must be given:

    * ``rank``: the user process with that rank is killed at ``at_us`` —
      its in-flight generator processes (program, lock daemons, helpers)
      are cancelled, the fabric refuses its transmissions, and its
      mailbox goes dark.
    * ``node``: the node's server thread *and* every rank placed on the
      node are killed together (a machine crash rather than a process
      crash).
    * ``nic``: only the node's NIC co-processor dies — the server and the
      hosted ranks keep running, but the ``("nic", node)`` endpoint goes
      dark and any in-flight offloaded barrier on that NIC is abandoned.
      Peers detect the silent NIC through the reliable layer's retry
      exhaustion, which escalates to a machine-crash suspicion (fail-stop:
      a node whose NIC stopped acknowledging is declared dead).

    ``at_us`` must be strictly positive: the crash executor has to fire
    after the programs are spawned, and a kill at exactly 0 would race
    spawn order nondeterministically.

    Crashes are permanent: there is no recovery window.  Detection and
    recovery are the job of :mod:`repro.runtime.membership`.
    """

    at_us: float
    rank: Optional[int] = None
    node: Optional[int] = None
    nic: Optional[int] = None

    def __post_init__(self) -> None:
        given = [x for x in (self.rank, self.node, self.nic) if x is not None]
        if len(given) != 1:
            raise ValueError("exactly one of rank / node / nic must be set")
        if self.at_us <= 0.0:
            raise ValueError(f"at_us must be positive, got {self.at_us}")

    @property
    def target(self) -> Tuple[str, int]:
        """A hashable (kind, index) identity for normalization/dedup."""
        if self.rank is not None:
            return ("rank", self.rank)
        if self.node is not None:
            return ("node", self.node)
        return ("nic", self.nic)


@dataclass(frozen=True)
class Partition:
    """A transient network partition: one side of a full bipartite cut.

    During ``[from_us, until_us)`` no inter-node transmission crosses
    between ``nodes`` and its complement — in either direction, requests
    and replies alike.  Traffic *within* each side is unaffected.  The cut
    heals at ``until_us``; from then on the reliable layer's retransmits
    get through and both sides reconcile (the job of
    :mod:`repro.runtime.membership`).

    Partition drops are deterministic — no RNG draw — so the same plan
    cuts exactly the same transmissions on every run, and enabling a
    partition does not perturb the probabilistic link-fault stream.
    """

    nodes: Tuple[int, ...]
    from_us: float
    until_us: float

    def __post_init__(self) -> None:
        normalized = tuple(sorted(set(int(n) for n in self.nodes)))
        if not normalized:
            raise ValueError("a partition needs at least one node on its side")
        if any(n < 0 for n in normalized):
            raise ValueError(f"partition nodes must be non-negative, got {self.nodes}")
        if normalized != self.nodes:
            object.__setattr__(self, "nodes", normalized)
        if self.from_us < 0.0 or self.until_us <= self.from_us:
            raise ValueError(
                f"need 0 <= from_us < until_us, got [{self.from_us}, {self.until_us})"
            )

    def covers(self, when: float) -> bool:
        return self.from_us <= when < self.until_us

    def separates(self, node_a: int, node_b: int, when: float) -> bool:
        """True when the cut is active and the two nodes sit on opposite sides."""
        return self.covers(when) and ((node_a in self.nodes) != (node_b in self.nodes))


@dataclass(frozen=True)
class ProcessStall:
    """A transient pause of one rank: descheduled, not killed.

    During ``[from_us, until_us)`` every delivery addressed to the rank's
    mailbox (``("mp", rank)``) is held and arrives when the window closes,
    intra-node traffic included — a swapped-out or GC-frozen process
    receives nothing while it is off the CPU.  Nothing is lost; the rank
    resumes with its backlog.  Peers experience the pause as silence
    (retransmits go unacknowledged) and may transiently exclude the rank;
    it rejoins on resume.
    """

    rank: int
    from_us: float
    until_us: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.from_us < 0.0 or self.until_us <= self.from_us:
            raise ValueError(
                f"need 0 <= from_us < until_us, got [{self.from_us}, {self.until_us})"
            )

    def covers(self, when: float) -> bool:
        return self.from_us <= when < self.until_us


@dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable description of how the network misbehaves.

    Attributes
    ----------
    default:
        Fault rates applied to every inter-node link not overridden.
    links:
        Per-link overrides: ``(((src_node, dst_node), LinkFaults), ...)``.
    stalls:
        Timed server stall/crash windows.
    partitions:
        Transient network partitions (full bipartite cuts between node
        groups).  Require ``reliable=True``: healing relies on the
        retransmit layer redelivering what the cut swallowed.
    pauses:
        Transient process stalls (a rank pauses without dying).
    seed:
        Fault-stream RNG seed; ``None`` derives it from the network seed.
        Independent from the jitter stream either way.
    reliable:
        Whether the fabric should run the ACK/retransmit/resequencing layer
        (:mod:`repro.net.reliable`) on top of the faulty links.  Disable it
        to expose raw faults to the runtime (e.g. to exercise the server's
        idempotent dispatch directly).
    apply_to_replies:
        Whether server responses are subject to link faults too (they are
        on a real network; disable for experiments that only perturb the
        request direction).
    """

    default: LinkFaults = LinkFaults()
    links: Tuple[Tuple[Tuple[int, int], LinkFaults], ...] = ()
    stalls: Tuple[StallWindow, ...] = ()
    crashes: Tuple[ProcessCrash, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    pauses: Tuple[ProcessStall, ...] = ()
    seed: Optional[int] = None
    reliable: bool = True
    apply_to_replies: bool = True

    def __post_init__(self) -> None:
        for crash in self.crashes:
            if not isinstance(crash, ProcessCrash):
                raise TypeError(f"crashes must hold ProcessCrash, got {crash!r}")
        for part in self.partitions:
            if not isinstance(part, Partition):
                raise TypeError(f"partitions must hold Partition, got {part!r}")
        for pause in self.pauses:
            if not isinstance(pause, ProcessStall):
                raise TypeError(f"pauses must hold ProcessStall, got {pause!r}")
        if self.partitions and not self.reliable:
            raise ValueError(
                "partitions require reliable=True: healing redelivers cut "
                "traffic through the retransmit layer"
            )
        # Normalize transient windows chronologically for deterministic
        # iteration (heal executors fire in this order).
        normalized_parts = tuple(
            sorted(self.partitions, key=lambda p: (p.from_us, p.until_us, p.nodes))
        )
        if normalized_parts != self.partitions:
            object.__setattr__(self, "partitions", normalized_parts)
        normalized_pauses = tuple(
            sorted(self.pauses, key=lambda s: (s.from_us, s.until_us, s.rank))
        )
        if normalized_pauses != self.pauses:
            object.__setattr__(self, "pauses", normalized_pauses)
        # Normalize the schedule deterministically: chronological order,
        # and at most one entry per target (a process can only die once —
        # the earliest entry wins, later duplicates are dropped).  A node
        # crash and a crash of one of its ranks are *different* targets;
        # their overlap is resolved idempotently at kill time by
        # :mod:`repro.runtime.membership`.
        if self.crashes:
            earliest: Dict[Tuple[str, int], ProcessCrash] = {}
            for crash in self.crashes:
                kept = earliest.get(crash.target)
                if kept is None or crash.at_us < kept.at_us:
                    earliest[crash.target] = crash
            normalized = tuple(
                sorted(earliest.values(), key=lambda c: (c.at_us,) + c.target)
            )
            if normalized != self.crashes:
                object.__setattr__(self, "crashes", normalized)

    @classmethod
    def uniform(
        cls,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_spike_us: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_window_us: float = 0.0,
        stalls: Tuple[StallWindow, ...] = (),
        crashes: Tuple[ProcessCrash, ...] = (),
        partitions: Tuple[Partition, ...] = (),
        pauses: Tuple[ProcessStall, ...] = (),
        seed: Optional[int] = None,
        reliable: bool = True,
    ) -> "FaultPlan":
        """The common case: the same fault rates on every link."""
        return cls(
            default=LinkFaults(
                drop_rate=drop_rate,
                dup_rate=dup_rate,
                delay_rate=delay_rate,
                delay_spike_us=delay_spike_us,
                reorder_rate=reorder_rate,
                reorder_window_us=reorder_window_us,
            ),
            stalls=stalls,
            crashes=crashes,
            partitions=partitions,
            pauses=pauses,
            seed=seed,
            reliable=reliable,
        )

    def link(self, src_node: int, dst_node: int) -> LinkFaults:
        for (src, dst), faults in self.links:
            if src == src_node and dst == dst_node:
                return faults
        return self.default

    # -- transient-fault queries (partitions and pauses) ---------------------

    @property
    def transient(self) -> bool:
        """Does the plan contain recoverable faults (partitions / pauses)?"""
        return bool(self.partitions or self.pauses)

    @property
    def transient_end_us(self) -> float:
        """When the last transient window closes (0.0 without any)."""
        ends = [p.until_us for p in self.partitions]
        ends += [s.until_us for s in self.pauses]
        return max(ends) if ends else 0.0

    def partitioned(self, node_a: int, node_b: int, when: float) -> bool:
        """Is the fabric cut between the two nodes at ``when``?"""
        return any(p.separates(node_a, node_b, when) for p in self.partitions)

    def partition_until(self, node_a: int, node_b: int, when: float) -> Optional[float]:
        """End of the last active cut separating the nodes, else ``None``."""
        until: Optional[float] = None
        for part in self.partitions:
            if part.separates(node_a, node_b, when):
                if until is None or part.until_us > until:
                    until = part.until_us
        return until

    def stalled(self, rank: int, when: float) -> bool:
        return any(s.rank == rank and s.covers(when) for s in self.pauses)

    def stall_until(self, rank: int, when: float) -> Optional[float]:
        """End of the last active pause of ``rank``, else ``None``."""
        until: Optional[float] = None
        for pause in self.pauses:
            if pause.rank == rank and pause.covers(when):
                if until is None or pause.until_us > until:
                    until = pause.until_us
        return until

    def components(self, nodes: Tuple[int, ...], when: float) -> List[Tuple[int, ...]]:
        """Connectivity components of ``nodes`` under the cuts active at ``when``.

        Each partition is a full bipartite cut, so two nodes communicate
        iff they fall on the same side of *every* active cut: group by the
        signature of side memberships.  Components are returned sorted by
        their smallest node (deterministic for view merges).
        """
        active = [p for p in self.partitions if p.covers(when)]
        if not active:
            return [tuple(sorted(nodes))] if nodes else []
        groups: Dict[Tuple[bool, ...], List[int]] = {}
        for node in nodes:
            signature = tuple(node in p.nodes for p in active)
            groups.setdefault(signature, []).append(node)
        return sorted((tuple(sorted(g)) for g in groups.values()), key=lambda c: c[0])


@dataclass
class FaultStats:
    """What the injector actually did (per fabric)."""

    dropped: int = 0
    duplicated: int = 0
    delay_spikes: int = 0
    reordered: int = 0
    stall_held: int = 0
    crash_dropped: int = 0
    partition_dropped: int = 0
    pause_held: int = 0

    @property
    def total(self) -> int:
        return (
            self.dropped
            + self.duplicated
            + self.delay_spikes
            + self.reordered
            + self.stall_held
            + self.crash_dropped
            + self.partition_dropped
            + self.pause_held
        )


class FaultInjector:
    """Applies a :class:`FaultPlan` to individual transmission attempts."""

    def __init__(self, plan: FaultPlan, fallback_seed: int):
        self.plan = plan
        seed = plan.seed if plan.seed is not None else fallback_seed
        # String seeding hashes via SHA-512: stable across processes and
        # independent of PYTHONHASHSEED, and distinct from the jitter
        # stream which seeds random.Random(seed) directly.
        self._rng = random.Random(f"faults:{seed}")
        self._links: Dict[Tuple[int, int], LinkFaults] = dict(plan.links)
        self.stats = FaultStats()

    def __repr__(self) -> str:
        return f"<FaultInjector plan={self.plan!r} injected={self.stats.total}>"

    def link(self, src_node: int, dst_node: int) -> LinkFaults:
        return self._links.get((src_node, dst_node), self.plan.default)

    # -- the one entry point the fabric calls --------------------------------

    def delivery_offsets(
        self,
        src_node: int,
        dst_node: int,
        dst: Optional[Endpoint],
        now: float,
        base_delay: float,
        intra_node: bool = False,
    ) -> List[float]:
        """Delivery delays for one physical transmission attempt.

        Returns zero (dropped), one, or two (duplicated) delays relative to
        ``now``.  ``dst`` is the destination endpoint when the transmission
        targets a registered mailbox (stall windows key off server
        endpoints); pass ``None`` for transport-internal traffic (ACKs).
        """
        if intra_node:
            # The shared-memory queue is reliable; only an outage of the
            # server itself (or a pause of the destination rank) affects it.
            return self._apply_pauses(
                dst, now, self._apply_stalls(dst, now, [base_delay])
            )
        if self.plan.partitions and self.plan.partitioned(src_node, dst_node, now):
            # Deterministic cut: no RNG draw, so the probabilistic link
            # fault stream is unperturbed by partition windows.
            self.stats.partition_dropped += 1
            return []
        faults = self.link(src_node, dst_node)
        delays: List[float] = []
        if faults.active:
            rng = self._rng
            if faults.drop_rate > 0.0 and rng.random() < faults.drop_rate:
                self.stats.dropped += 1
            else:
                delay = base_delay
                if faults.delay_rate > 0.0 and rng.random() < faults.delay_rate:
                    self.stats.delay_spikes += 1
                    delay += faults.delay_spike_us
                if faults.reorder_rate > 0.0 and rng.random() < faults.reorder_rate:
                    self.stats.reordered += 1
                    delay += rng.uniform(0.0, faults.reorder_window_us)
                delays.append(delay)
                if faults.dup_rate > 0.0 and rng.random() < faults.dup_rate:
                    self.stats.duplicated += 1
                    delays.append(delay + rng.uniform(0.0, faults.dup_lag_us))
        else:
            delays.append(base_delay)
        return self._apply_pauses(dst, now, self._apply_stalls(dst, now, delays))

    def _apply_stalls(
        self, dst: Optional[Endpoint], now: float, delays: List[float]
    ) -> List[float]:
        if not self.plan.stalls or dst is None or dst[0] != "srv":
            return delays
        node = dst[1]
        out: List[float] = []
        for delay in delays:
            window = self._window_hit(node, now + delay)
            if window is None:
                out.append(delay)
            elif window.mode == "crash":
                self.stats.crash_dropped += 1
            else:
                self.stats.stall_held += 1
                out.append(window.end_us - now)
        return out

    def _window_hit(self, node: int, when: float) -> Optional[StallWindow]:
        for window in self.plan.stalls:
            if window.node == node and window.covers(when):
                return window
        return None

    def _apply_pauses(
        self, dst: Optional[Endpoint], now: float, delays: List[float]
    ) -> List[float]:
        """Hold deliveries addressed to a paused rank until it resumes."""
        if not self.plan.pauses or dst is None or dst[0] != "mp":
            return delays
        rank = dst[1]
        out: List[float] = []
        for delay in delays:
            until = self.plan.stall_until(rank, now + delay)
            if until is None:
                out.append(delay)
            else:
                self.stats.pause_held += 1
                out.append(until - now)
        return out
