"""Reliable delivery over a lossy fabric: ACK / retransmit / resequence.

GM gives ARMCI reliable, in-order delivery for free (paper §3.1.1), and the
optimized synchronization operations lean on it: the server's FIFO request
processing stands in for completion tracking, and the ``op_done`` counters
of the combined barrier assume every issued operation arrives exactly once.
When the fabric injects faults (:mod:`repro.net.faults`), this module
restores those guarantees the way a GM-like transport would:

* **Sender side** — every logical message becomes a *frame* with a
  per-``(source, destination endpoint)`` sequence number.  A frame is
  retransmitted on an exponential-backoff timer (``retry_timeout_us``,
  ``retry_backoff``) until the receiver acknowledges it; after
  ``max_retries`` unanswered attempts the transport declares the peer
  dead: the channel's backlog is discarded, the event is counted in
  ``FabricStats.links_declared_dead``, and the suspicion is reported to
  the membership failure detector (:mod:`repro.runtime.membership`) when
  one is attached.  Unrelated survivor traffic keeps flowing — exhaustion
  no longer raises out of the simulation.

* **Receiver side** — duplicate frames (retransmissions whose original made
  it, or network-duplicated copies) are suppressed and re-acknowledged; a
  resequencer buffers out-of-order frames and releases them to the real
  mailbox in sequence order, restoring GM's per-pair FIFO property.

* **ACKs** — acknowledgements travel the reverse path and are themselves
  subject to link faults (a lost ACK causes a retransmission, which the
  receiver suppresses as a duplicate and re-acknowledges).

Server *responses* (:meth:`Fabric.post_reply`) complete a bare event rather
than feeding a mailbox, so they need no resequencing: reply frames are
retransmitted until acknowledged and deduplicated by the event's
single-trigger property.

Retry, timeout, and duplicate-suppression counters are surfaced through
:class:`repro.net.fabric.FabricStats`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..sim.core import Event, SimulationError
from .message import Endpoint, Envelope
from .params import MSG_HEADER_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from .fabric import Fabric

__all__ = ["ReliableDelivery", "ReliabilityError", "ACK_BYTES"]

#: Wire size of an acknowledgement frame (header-only control message).
ACK_BYTES = MSG_HEADER_BYTES

#: Channel key: (logical source, destination endpoint).
ChannelKey = Tuple[Any, Endpoint]


class ReliabilityError(SimulationError):
    """Kept for API compatibility: retry exhaustion used to raise this.

    Since the crash-stop subsystem landed, exhaustion instead declares the
    peer dead (``FabricStats.links_declared_dead``) and keeps the
    simulation running; this class remains importable for callers that
    still reference it.
    """


class _Frame:
    """One logical message in flight, across all its transmission attempts."""

    __slots__ = (
        "seq",
        "kind",
        "envelope",
        "event",
        "value",
        "size_bytes",
        "src_node",
        "dst_node",
        "dst",
        "attempts",
        "acked",
        "acks_sent",
        "sent_at",
    )

    def __init__(
        self,
        seq: int,
        kind: str,
        size_bytes: int,
        src_node: int,
        dst_node: int,
        dst: Optional[Endpoint],
        envelope: Optional[Envelope] = None,
        event: Optional[Event] = None,
        value: Any = None,
    ):
        self.seq = seq
        self.kind = kind  # "msg" (mailbox envelope) | "reply" (bare event)
        self.size_bytes = size_bytes
        self.src_node = src_node
        self.dst_node = dst_node
        self.dst = dst
        self.envelope = envelope
        self.event = event
        self.value = value
        self.attempts = 0
        self.acked = False
        self.acks_sent = 0
        self.sent_at = 0.0

    def __repr__(self) -> str:
        state = "acked" if self.acked else f"attempt {self.attempts}"
        return f"<Frame {self.kind} seq={self.seq} {state}>"


@dataclass
class _SendChannel:
    next_seq: int = 0
    unacked: Dict[int, _Frame] = field(default_factory=dict)
    #: Jacobson RTT estimator state (adaptive_retry only): smoothed RTT and
    #: its mean deviation, fed by first-attempt ACKs (Karn's rule).
    srtt: Optional[float] = None
    rttvar: float = 0.0
    #: Deterministic per-channel jitter factor on the RTO cap, in [0, 1).
    cap_jitter: Optional[float] = None


@dataclass
class _RecvChannel:
    #: Next in-order sequence number to release to the mailbox.
    expected: int = 0
    #: Out-of-order frames awaiting the gap fill (resequencer).
    buffer: Dict[int, Envelope] = field(default_factory=dict)


class ReliableDelivery:
    """Per-fabric reliable transport state (all channels, both directions)."""

    def __init__(self, fabric: "Fabric"):
        self.fabric = fabric
        self.env = fabric.env
        self.params = fabric.params
        self._send_channels: Dict[ChannelKey, _SendChannel] = {}
        self._recv_channels: Dict[ChannelKey, _RecvChannel] = {}
        #: Destination endpoints declared dead (retry exhaustion or an
        #: explicit crash): new frames to them are dropped on the floor.
        self._dead_endpoints: set = set()

    def __repr__(self) -> str:
        inflight = sum(len(ch.unacked) for ch in self._send_channels.values())
        return f"<ReliableDelivery channels={len(self._send_channels)} inflight={inflight}>"

    # -- introspection -------------------------------------------------------

    def in_flight(self) -> int:
        """Number of unacknowledged frames across all channels."""
        return sum(len(ch.unacked) for ch in self._send_channels.values())

    def resequencer_depth(self) -> int:
        """Frames currently buffered out-of-order at receivers."""
        return sum(len(ch.buffer) for ch in self._recv_channels.values())

    # -- sender entry points (called by Fabric) -------------------------------

    def send_envelope(self, envelope: Envelope, src_node: int, dst_node: int) -> None:
        """Ship a mailbox-bound envelope reliably and in order."""
        if envelope.dst in self._dead_endpoints:
            self.fabric.stats.dropped_dead += 1
            return
        key: ChannelKey = (envelope.src_rank, envelope.dst)
        channel = self._send_channels.setdefault(key, _SendChannel())
        frame = _Frame(
            seq=channel.next_seq,
            kind="msg",
            size_bytes=envelope.size_bytes,
            src_node=src_node,
            dst_node=dst_node,
            dst=envelope.dst,
            envelope=envelope,
        )
        channel.next_seq += 1
        channel.unacked[frame.seq] = frame
        self._transmit(key, channel, frame)

    def send_reply(
        self,
        src_node: int,
        dst_node: int,
        dst_rank: int,
        reply_event: Event,
        value: Any,
        size_bytes: int,
    ) -> None:
        """Ship a server response reliably (at-least-once + event dedup)."""
        if ("mp", dst_rank) in self._dead_endpoints:
            self.fabric.stats.dropped_dead += 1
            return
        key: ChannelKey = (("reply", src_node), ("mp", dst_rank))
        channel = self._send_channels.setdefault(key, _SendChannel())
        frame = _Frame(
            seq=channel.next_seq,
            kind="reply",
            size_bytes=size_bytes,
            src_node=src_node,
            dst_node=dst_node,
            dst=None,
            event=reply_event,
            value=value,
        )
        channel.next_seq += 1
        channel.unacked[frame.seq] = frame
        self._transmit(key, channel, frame)

    # -- transmission / retransmission ----------------------------------------

    def _transmit(self, key: ChannelKey, channel: _SendChannel, frame: _Frame) -> None:
        fabric = self.fabric
        env = self.env
        frame.attempts += 1
        frame.sent_at = env.now
        latency = None
        if frame.kind == "msg" and frame.dst is not None:
            latency = fabric.wire_latency_override(
                frame.envelope.src_rank, frame.dst
            )
        base = fabric._path_delay(
            frame.src_node, frame.dst_node, frame.size_bytes, latency_us=latency
        )
        if frame.kind == "reply":
            # As in Fabric.post_reply, the blocked requester's receive
            # overhead folds into the delivery delay.
            base += self.params.o_recv_us
        plan = fabric.faults.plan if fabric.faults is not None else None
        if fabric.faults is None or (frame.kind == "reply" and not plan.apply_to_replies):
            offsets = [base]
        else:
            offsets = fabric.faults.delivery_offsets(
                frame.src_node, frame.dst_node, frame.dst, env.now, base
            )
        for j, offset in enumerate(offsets):
            deliver = env.timeout(offset)
            if env._mc_strategy is not None:
                # RMCheck transition label.  msg frames target their mailbox
                # endpoint; reply frames target the requester rank (key[1]).
                # Identity (channel, seq, attempt, copy) is stable across
                # schedule reorderings.
                dst_key = frame.dst if frame.dst is not None else key[1]
                deliver._mc_label = (
                    "frame",
                    dst_key,
                    (key, frame.seq, frame.attempts, j),
                )
            deliver.callbacks.append(lambda _ev, k=key, f=frame: self._arrive(k, f))
        self._arm_timer(key, channel, frame)

    def _arm_timer(self, key: ChannelKey, channel: _SendChannel, frame: _Frame) -> None:
        p = self.params
        if p.adaptive_retry:
            timeout = self._adaptive_rto(key, channel, frame.attempts)
        else:
            timeout = p.retry_timeout_us * (p.retry_backoff ** (frame.attempts - 1))
        generation = frame.attempts
        timer = self.env.timeout(timeout)
        timer.callbacks.append(
            lambda _ev: self._on_timer(key, channel, frame, generation)
        )

    def _adaptive_rto(self, key: ChannelKey, channel: _SendChannel, attempt: int) -> float:
        """Jacobson-style RTO: ``srtt + 4 * rttvar``, backed off and capped.

        Until the channel has an RTT sample the configured fixed timeout
        serves as the initial estimate.  The cap carries a deterministic
        per-channel jitter (up to +10%) so channels that exhausted their
        backoff against a partitioned peer do not re-probe in lockstep when
        the cut heals.
        """
        p = self.params
        if channel.srtt is None:
            base = p.retry_timeout_us
        else:
            base = channel.srtt + 4.0 * channel.rttvar
        base = max(base, p.adaptive_rto_min_us)
        timeout = base * (p.retry_backoff ** (attempt - 1))
        if channel.cap_jitter is None:
            # String seeding: stable across runs and PYTHONHASHSEED values.
            channel.cap_jitter = random.Random(
                f"rto:{p.seed}:{key!r}"
            ).random()
        cap = p.adaptive_rto_max_us * (1.0 + 0.1 * channel.cap_jitter)
        return min(timeout, cap)

    def _on_timer(
        self, key: ChannelKey, channel: _SendChannel, frame: _Frame, generation: int
    ) -> None:
        if frame.acked or frame.attempts != generation:
            return
        stats = self.fabric.stats
        stats.timeouts += 1
        if frame.attempts > self.params.max_retries:
            hold_until = self._transient_hold(key, frame)
            if hold_until is not None:
                self._suspend(key, channel, frame, hold_until)
                return
            self._declare_dead(key, frame)
            return
        stats.retransmits += 1
        self._transmit(key, channel, frame)

    # -- transient suspension (partitions / pauses) ---------------------------

    def _transient_hold(self, key: ChannelKey, frame: _Frame) -> Optional[float]:
        """When exhaustion is attributable to a transient fault, the time to
        resume retransmitting; ``None`` means the silence is unexplained
        (dead peer) and fail-stop declaration should proceed."""
        faults = self.fabric.faults
        if faults is None or not faults.plan.transient:
            return None
        plan = faults.plan
        now = self.env.now
        until = plan.partition_until(frame.src_node, frame.dst_node, now)
        endpoint = key[1]
        if endpoint[0] == "mp":
            stall = plan.stall_until(endpoint[1], now)
            if stall is not None and (until is None or stall > until):
                until = stall
        if until is not None:
            return until
        # The window may have closed between the last (cut) transmission
        # and this timer firing: resume immediately with a fresh budget.
        if plan.partitioned(frame.src_node, frame.dst_node, frame.sent_at) or (
            endpoint[0] == "mp" and plan.stalled(endpoint[1], frame.sent_at)
        ):
            return now
        return None

    def _suspend(
        self, key: ChannelKey, channel: _SendChannel, frame: _Frame, until: float
    ) -> None:
        """Queue, do not fail: park the frame until the transient clears.

        The frame keeps its channel slot (in-order release at the receiver
        still works), its retry budget is refilled, and the peer is
        *suspected* — the membership detector decides whether the suspicion
        is partition-attributable (transient exclusion, rejoin on heal)
        rather than this layer declaring fail-stop death.
        """
        self.fabric.stats.retry_suspended += 1
        membership = self.fabric._membership
        if membership is not None:
            membership.suspect(key[1], reason="retry suspended (transient fault)")
        resume_at = max(until - self.env.now, 0.0) + self.params.membership_poll_us
        frame.attempts = 0
        timer = self.env.timeout(resume_at)
        timer.callbacks.append(lambda _ev: self._resume(key, channel, frame))

    def _resume(self, key: ChannelKey, channel: _SendChannel, frame: _Frame) -> None:
        if frame.acked or key[1] in self._dead_endpoints:
            return
        if frame.attempts != 0:
            return  # a racing path already restarted this frame
        self.fabric.stats.retransmits += 1
        self._transmit(key, channel, frame)

    def _declare_dead(self, key: ChannelKey, frame: _Frame) -> None:
        """Retry budget exhausted: give up on the peer instead of raising.

        The destination endpoint is marked dead, every frame still queued
        for it (on any channel) is discarded so no timer re-arms, and the
        suspicion is handed to the membership detector if one is attached.
        """
        endpoint = key[1]
        self.fabric.stats.links_declared_dead += 1
        # mark_dead makes the fabric refuse follow-up posts at the source
        # and calls back into abandon() to drop the queued backlog.
        self.fabric.mark_dead(endpoint)
        membership = self.fabric._membership
        if membership is not None:
            membership.suspect(endpoint, reason="retry budget exhausted")

    def abandon(self, endpoint: Endpoint) -> None:
        """Discard all transport state destined for ``endpoint``."""
        self._dead_endpoints.add(endpoint)
        for key, channel in self._send_channels.items():
            if key[1] != endpoint:
                continue
            for frame in channel.unacked.values():
                frame.acked = True  # disarms any pending retry timer
            channel.unacked.clear()
        for key, channel in self._recv_channels.items():
            if key[1] == endpoint:
                channel.buffer.clear()

    def abandon_sender(self, src_rank: int) -> None:
        """Fail-stop a *sender*: its transport state dies with the process.

        Retry timers are environment callbacks, so without this a crashed
        rank's unacknowledged frames would keep retransmitting from beyond
        the grave and eventually land — ops the crash recovery already
        wrote off must stay un-applied.  (Copies the fabric already has in
        flight still arrive: only retransmission state is destroyed.)
        """
        for key, channel in self._send_channels.items():
            if key[0] != src_rank:
                continue
            for frame in channel.unacked.values():
                frame.acked = True
            channel.unacked.clear()

    # -- receiver side ---------------------------------------------------------

    def _arrive(self, key: ChannelKey, frame: _Frame) -> None:
        stats = self.fabric.stats
        if (
            frame.dst is not None
            and self.fabric._blackhole_endpoints
            and frame.dst in self.fabric._blackhole_endpoints
        ):
            # Silent device (crashed NIC): swallow the frame without an
            # ACK so the sender's retry budget runs out and suspicion
            # reaches the membership detector.
            stats.blackholed += 1
            return
        if frame.kind == "msg":
            channel = self._recv_channels.setdefault(key, _RecvChannel())
            if frame.seq < channel.expected or frame.seq in channel.buffer:
                stats.dup_suppressed += 1
            else:
                channel.buffer[frame.seq] = frame.envelope
                self._release_in_order(channel, frame.dst)
        else:  # reply: the event can only trigger once
            if frame.event.triggered:
                stats.dup_suppressed += 1
            else:
                frame.event.succeed(frame.value)
        self._send_ack(key, frame)

    def _release_in_order(self, channel: _RecvChannel, dst: Endpoint) -> None:
        mailbox = self.fabric.mailbox(dst)
        now = self.env.now
        while channel.expected in channel.buffer:
            envelope = channel.buffer.pop(channel.expected)
            channel.expected += 1
            envelope.deliver_at = now
            mailbox.put(envelope)

    # -- acknowledgements ------------------------------------------------------

    def _send_ack(self, key: ChannelKey, frame: _Frame) -> None:
        fabric = self.fabric
        env = self.env
        fabric.stats.acks += 1
        base = fabric._path_delay(frame.dst_node, frame.src_node, ACK_BYTES)
        if fabric.faults is None:
            offsets = [base]
        else:
            offsets = fabric.faults.delivery_offsets(
                frame.dst_node, frame.src_node, None, env.now, base
            )
        if env._mc_strategy is not None:
            frame.acks_sent += 1
        for j, offset in enumerate(offsets):
            deliver = env.timeout(offset)
            if env._mc_strategy is not None:
                # ACKs for the same channel are mutually dependent (they
                # race on frame.acked / the retry timer), so their dst_key
                # is the channel itself rather than a mailbox endpoint.
                deliver._mc_label = (
                    "ack",
                    ("ack-ch", key),
                    (frame.seq, frame.acks_sent, j),
                )
            deliver.callbacks.append(lambda _ev, k=key, f=frame: self._on_ack(k, f))

    def _on_ack(self, key: ChannelKey, frame: _Frame) -> None:
        if frame.acked:
            return  # duplicate ACK
        frame.acked = True
        channel = self._send_channels.get(key)
        if channel is not None:
            channel.unacked.pop(frame.seq, None)
            if self.params.adaptive_retry and frame.attempts == 1:
                # Karn's rule: only un-retransmitted frames give unambiguous
                # RTT samples (an ACK after a retransmit could belong to
                # either copy).
                self._sample_rtt(channel, self.env.now - frame.sent_at)

    def _sample_rtt(self, channel: _SendChannel, rtt: float) -> None:
        if channel.srtt is None:
            channel.srtt = rtt
            channel.rttvar = rtt / 2.0
        else:
            # RFC 6298 gains: alpha = 1/8, beta = 1/4.
            channel.rttvar += 0.25 * (abs(channel.srtt - rtt) - channel.rttvar)
            channel.srtt += 0.125 * (rtt - channel.srtt)
        self.fabric.stats.rtt_samples += 1
