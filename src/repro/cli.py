"""Command-line entry point: regenerate any of the paper's figures.

Usage (installed as ``armci-repro``, or ``python -m repro``)::

    armci-repro fig7                # GA_Sync time + factor (Figure 7)
    armci-repro fig8                # lock request+release (Figure 8)
    armci-repro fig9                # lock acquire (Figure 9)
    armci-repro fig10               # lock release (Figure 10)
    armci-repro locks               # Figures 8-10 from one run
    armci-repro ablations           # all five ablation studies
    armci-repro faults              # sync cost + retry volume vs drop rate
    armci-repro chaos               # crash-stop kills + membership recovery
    armci-repro nic                 # host vs NIC-offloaded barrier ablation
    armci-repro scalebench          # barrier scaling to 1024 processes
    armci-repro all                 # everything above
    armci-repro fuzz                # randomized fault/crash scenario fuzzing
    armci-repro fig7 --iterations 100 --network gige
    armci-repro fig7 --jobs 4       # shard sweep cells over 4 workers
    armci-repro faults --drop-rate 0.05 --fault-seed 7 --retry-timeout 40
    armci-repro chaos --kill 5:60 --kill 6:900 --lock mcs --kill-seed 7
    armci-repro fuzz --seeds 200 --json-out fuzz.json
    armci-repro fuzz --replay 20    # deterministic re-run of one seed
    armci-repro fuzz --self-test    # validate the oracle on seeded mutants
    armci-repro mc                  # RMCheck: explore every named target
    armci-repro mc nic-barrier --budget 2000 --window 3
    armci-repro mc --scenario 7     # explore a fuzzer-generated scenario
    armci-repro mc --schedule ce.json   # replay a counterexample
    armci-repro mc --self-test      # find the seeded mutants by exploration

Fault options: ``--drop-rate`` enables seeded link-fault injection (with
the reliable ACK/retransmit layer) on *any* experiment — with the
``faults`` experiment it selects the sweep's single non-zero point;
``--fault-seed`` pins the fault RNG stream and ``--retry-timeout`` the
first retransmission timeout.

Chaos options: each ``--kill RANK:AT_US`` schedules a permanent crash-stop
failure of RANK at AT_US simulated microseconds.  Kills before the barrier
hold point strike mid-exchange inside ``ARMCI_Barrier()``; later kills
strike while RANK holds the contended lock (``--lock`` picks the
algorithm).  ``--kill-seed`` pins the heartbeat/detector RNG stream.
``--partition NODES:FROM_US:UNTIL_US`` cuts a node group (comma-separated)
off the fabric for the window — its ranks freeze on quorum loss and rejoin
with a state resync at the heal; ``--stall RANK:FROM_US:UNTIL_US`` pauses
one rank transiently.  Whenever faults or transients are injected the
reliable layer estimates its retransmission timeout adaptively
(Jacobson/Karn RTT estimation with a jittered cap); passing
``--retry-timeout`` pins the fixed timeout instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    Fig7Config,
    LockBenchConfig,
    run_fig7,
    run_lock_series,
)
from .experiments.ablations import (
    render_release_opt,
    run_crossover,
    run_fence_modes,
    run_release_opt,
    run_smp_handoff,
    run_wake_cost,
)
from .experiments.lockbench import comparison_from_series
from .net.params import _preset

__all__ = ["main"]


class _CliError(Exception):
    """A user-input problem: reported as one line on stderr, exit 2."""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="armci-repro",
        description=(
            "Reproduce the figures of 'Optimizing Synchronization Operations "
            "for Remote Memory Communication Systems' (IPPS 2003) on a "
            "simulated Myrinet cluster."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=["fig7", "fig8", "fig9", "fig10", "locks", "ablations", "app",
                 "microbench", "fairness", "faults", "chaos", "nic",
                 "scalebench", "fuzz", "mc", "validate", "check", "all"],
        help="which experiment to regenerate (or 'check' to run RMCSan, "
        "'fuzz' to run the scenario fuzzer, 'mc' to run RMCheck schedule "
        "exploration)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "for 'check': which workload to sanitize "
            "(fig7, locks, faultbench, chaos, nic, partition; default all); "
            "for 'mc': which model-checking target to explore "
            "(see repro.mc.targets; default all)"
        ),
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="with 'check': run the static lint pass instead of the "
        "dynamic happens-before checker",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with 'check --lint': exit nonzero when there are findings "
        "(CI mode; the default is report-only)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "dump the RMCSan protocol-event trace of every simulated run "
            "to PATH as JSON lines (enables event collection)"
        ),
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="timed iterations per configuration (default: fig7 100, locks 400)",
    )
    parser.add_argument(
        "--network",
        default="myrinet2000",
        help="network preset: myrinet2000 (default), gige, quadrics",
    )
    parser.add_argument(
        "--procs",
        type=int,
        nargs="+",
        default=None,
        help="process counts to sweep (default: paper's)",
    )
    parser.add_argument(
        "--ppn",
        type=int,
        default=1,
        help="processes per SMP node (default 1, as in the paper's runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "shard independent sweep cells over N worker processes "
            "(0 = one per core); simulated results are identical to a "
            "serial run (applies to fig7, nic, scalebench)"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write tidy CSV series for plotting into DIR",
    )
    parser.add_argument(
        "--drop-rate",
        type=float,
        default=None,
        metavar="P",
        help=(
            "inject seeded link faults: drop each inter-node transmission "
            "with probability P (reliable delivery layer enabled); for the "
            "'faults' experiment this picks the sweep's non-zero point"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed for the fault-injection RNG stream (independent of jitter)",
    )
    parser.add_argument(
        "--retry-timeout",
        type=float,
        default=None,
        metavar="US",
        help="reliable layer: first retransmission timeout in simulated us",
    )
    parser.add_argument(
        "--kill",
        action="append",
        default=None,
        metavar="RANK:AT_US",
        help=(
            "chaos: kill RANK at AT_US simulated microseconds (repeatable); "
            "kills before the barrier hold point hit the barrier exchange, "
            "later ones hit the lock holder"
        ),
    )
    parser.add_argument(
        "--kill-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="chaos: seed for the heartbeat/failure-detector RNG stream",
    )
    parser.add_argument(
        "--partition",
        action="append",
        default=None,
        metavar="NODES:FROM_US:UNTIL_US",
        help=(
            "chaos: cut the comma-separated node group off the fabric for "
            "the simulated-time window (repeatable); the minority freezes "
            "on quorum loss and rejoins with a state resync at the heal"
        ),
    )
    parser.add_argument(
        "--stall",
        action="append",
        default=None,
        metavar="RANK:FROM_US:UNTIL_US",
        help="chaos: pause RANK for the window, then resume it (no crash)",
    )
    parser.add_argument(
        "--lock",
        default=None,
        metavar="KIND",
        help=(
            "chaos: lock algorithm to recover "
            "(ticket, lh, server, hybrid, mcs, naimi, raymond; default hybrid)"
        ),
    )
    topo = parser.add_argument_group("topology options")
    topo.add_argument(
        "--topo",
        metavar="SPEC",
        default=None,
        help=(
            "hierarchical network topology, innermost level first: "
            "comma-separated NAME:ARITY[:LATENCY_US[:PER_BYTE_US"
            "[:CONTENTION]]] (empty numeric field = inherit the preset's "
            "flat figure), e.g. 'switch:8:26,spine:512:48::2.0'; enables "
            "the topology-aware barrier algorithms"
        ),
    )
    topo.add_argument(
        "--radix",
        type=int,
        default=None,
        metavar="K",
        help="k-ary combining-tree radix for the 'kary' barrier (default 4)",
    )
    topo.add_argument(
        "--coalesce",
        action="store_true",
        help=(
            "scalebench: one simulator actor per node instead of per rank "
            "(requires --ppn > 1); intra-node phases are charged "
            "analytically, inter-node phases simulated — what makes "
            "N=16384 tractable"
        ),
    )
    fuzz = parser.add_argument_group("fuzz options")
    fuzz.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="fuzz: number of consecutive seeds to run (default 50, or "
        "unlimited when --time-budget is given)",
    )
    fuzz.add_argument(
        "--start-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="fuzz: first seed of the campaign (default 0)",
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="S",
        help="fuzz: stop starting new seeds after S wall-clock seconds; "
        "scalebench: skip remaining cells once S seconds have elapsed",
    )
    fuzz.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="SEED",
        help="fuzz: re-expand and run one seed (byte-identical, nonzero "
        "exit iff it reports violations)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="fuzz: report the first failure without shrinking it",
    )
    fuzz.add_argument(
        "--self-test",
        action="store_true",
        help="fuzz/mc: plant the three seeded bug mutants and require the "
        "oracle to catch each (fuzz: within the seed budget; mc: by "
        "exploration at minimal N)",
    )
    fuzz.add_argument(
        "--self-test-budget",
        type=int,
        default=12,
        metavar="N",
        help="fuzz: seeds tried per mutant in --self-test (default 12)",
    )
    fuzz.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="fuzz: replay every corpus schedule in DIR instead of "
        "generating seeds (nonzero exit iff any entry fails)",
    )
    fuzz.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="fuzz/mc/scalebench: also write the campaign/replay/"
        "exploration/scaling result as JSON to PATH",
    )
    mc = parser.add_argument_group("mc options")
    mc.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="mc: max complete schedules per exploration (default: the "
        "target's tuned budget)",
    )
    mc.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="US",
        help="mc: commutation window in simulated us — deliveries within "
        "it of the queue head count as co-enabled (default: the target's)",
    )
    mc.add_argument(
        "--cap",
        type=float,
        default=None,
        metavar="US",
        help="mc: simulated-time cap per explored run (default: the "
        "target's)",
    )
    mc.add_argument(
        "--scenario",
        type=int,
        default=None,
        metavar="SEED",
        help="mc: explore the fuzzer-generated scenario for SEED instead "
        "of a named target",
    )
    mc.add_argument(
        "--schedule",
        metavar="PATH",
        default=None,
        help="mc: replay a serialized counterexample (nonzero exit iff it "
        "still fails)",
    )
    mc.add_argument(
        "--ce-out",
        metavar="DIR",
        default=None,
        help="mc: write any counterexample found to DIR as JSON",
    )
    return parser


def _validate_fault_args(args) -> None:
    """Reject nonsense fault options with a one-line error (satellites).

    argparse already type-checks ``--drop-rate``/``--fault-seed``; value
    *ranges* are checked here so a typo like ``--drop-rate 15`` fails up
    front instead of as a mid-simulation traceback.
    """
    drop = getattr(args, "drop_rate", None)
    if drop is not None and not (0.0 <= drop < 1.0):
        raise _CliError(
            f"--drop-rate must be a probability in [0, 1), got {drop!r}"
        )
    retry = getattr(args, "retry_timeout", None)
    if retry is not None and not retry > 0.0:
        raise _CliError(f"--retry-timeout must be > 0 us, got {retry!r}")


def _parse_kill(spec: str):
    """Parse one ``--kill RANK:AT_US`` spec or raise :class:`_CliError`."""
    try:
        rank_s, at_s = spec.split(":", 1)
        rank, at_us = int(rank_s), float(at_s)
    except ValueError:
        raise _CliError(f"bad --kill spec {spec!r}: expected RANK:AT_US")
    if rank < 0:
        raise _CliError(f"bad --kill spec {spec!r}: RANK must be >= 0")
    if not at_us > 0.0:
        raise _CliError(
            f"bad --kill spec {spec!r}: AT_US must be > 0 (a process "
            "cannot crash before the run starts)"
        )
    return rank, at_us


def _parse_window(spec: str, flag: str, what: str):
    """Split ``HEAD:FROM_US:UNTIL_US`` and validate the time window."""
    try:
        head, from_s, until_s = spec.rsplit(":", 2)
        from_us, until_us = float(from_s), float(until_s)
    except ValueError:
        raise _CliError(
            f"bad {flag} spec {spec!r}: expected {what}:FROM_US:UNTIL_US"
        )
    if not 0.0 <= from_us < until_us:
        raise _CliError(
            f"bad {flag} spec {spec!r}: need 0 <= FROM_US < UNTIL_US"
        )
    return head, from_us, until_us


def _parse_partition(spec: str):
    """Parse one ``--partition NODES:FROM_US:UNTIL_US`` spec.

    ``NODES`` is a comma-separated group of node ids cut off the fabric
    for the window; legality against the topology (node 0 stays in the
    majority, the group is a strict minority) is checked by chaosbench.
    """
    head, from_us, until_us = _parse_window(spec, "--partition", "NODES")
    try:
        nodes = tuple(sorted({int(n) for n in head.split(",") if n.strip()}))
    except ValueError:
        raise _CliError(
            f"bad --partition spec {spec!r}: NODES must be comma-separated ints"
        )
    if not nodes:
        raise _CliError(f"bad --partition spec {spec!r}: empty node group")
    if any(n < 0 for n in nodes):
        raise _CliError(f"bad --partition spec {spec!r}: node ids must be >= 0")
    return nodes, from_us, until_us


def _parse_stall(spec: str):
    """Parse one ``--stall RANK:FROM_US:UNTIL_US`` spec."""
    head, from_us, until_us = _parse_window(spec, "--stall", "RANK")
    try:
        rank = int(head)
    except ValueError:
        raise _CliError(f"bad --stall spec {spec!r}: RANK must be an int")
    if rank < 0:
        raise _CliError(f"bad --stall spec {spec!r}: RANK must be >= 0")
    return rank, from_us, until_us


def _parse_topo(args):
    """Resolve ``--topo`` to a :class:`~repro.topo.Hierarchy` (or None)."""
    spec = getattr(args, "topo", None)
    if spec is None:
        return None
    from .topo import parse_topo_spec

    try:
        return parse_topo_spec(spec)
    except ValueError as exc:
        raise _CliError(str(exc))


def _network_params(args):
    """Resolve the preset plus any fault/reliability/topology options."""
    from .net.faults import FaultPlan

    _validate_fault_args(args)
    params = _preset(args.network)
    overrides = {}
    hierarchy = _parse_topo(args)
    if hierarchy is not None:
        overrides["hierarchy"] = hierarchy
    radix = getattr(args, "radix", None)
    if radix is not None:
        if radix < 2:
            raise _CliError(f"--radix must be >= 2, got {radix!r}")
        overrides["tree_radix"] = radix
    if args.retry_timeout is not None:
        overrides["retry_timeout_us"] = args.retry_timeout
    if args.drop_rate:
        overrides["faults"] = FaultPlan.uniform(
            drop_rate=args.drop_rate,
            dup_rate=args.drop_rate / 2.0,
            seed=args.fault_seed,
        )
        if args.retry_timeout is None:
            # Default on faulty networks: estimate the retransmission
            # timeout adaptively (Jacobson/Karn) instead of the fixed
            # preset value.  An explicit --retry-timeout pins it fixed.
            overrides["adaptive_retry"] = True
    return params.with_(**overrides) if overrides else params


def _fig7(args) -> None:
    from .experiments.report import comparison_to_csv, write_csv

    cfg = Fig7Config(
        nprocs_list=tuple(args.procs) if args.procs else Fig7Config.nprocs_list,
        iterations=args.iterations or 100,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )
    comparison = run_fig7(cfg, jobs=args.jobs)
    print(comparison.render())
    if args.csv:
        path = write_csv(comparison_to_csv(comparison), args.csv, "fig7_ga_sync")
        print(f"csv written: {path}")


def _lock_cfg(args) -> LockBenchConfig:
    return LockBenchConfig(
        nprocs_list=tuple(args.procs) if args.procs else LockBenchConfig.nprocs_list,
        iterations=args.iterations or 400,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )


def _locks(args, which: Optional[str] = None) -> None:
    from .experiments.report import lock_series_to_csv, write_csv

    series = run_lock_series(_lock_cfg(args))
    figs = {
        "fig8": ("roundtrip", "Figure 8: time to request and release a lock"),
        "fig9": ("acquire", "Figure 9: time to request and acquire a lock"),
        "fig10": ("release", "Figure 10: time to release a lock"),
    }
    selected = [which] if which else list(figs)
    for key in selected:
        metric, title = figs[key]
        print(comparison_from_series(series, metric, title).render())
        print()
    if args.csv:
        path = write_csv(lock_series_to_csv(series), args.csv, "figs8_9_10_locks")
        print(f"csv written: {path}")


def _ablations(args) -> None:
    from .experiments.ablations import render_lock_algorithms, run_lock_algorithms

    print(run_crossover(params=_network_params(args)).render())
    print()
    print(run_fence_modes(params=_network_params(args)).render())
    print()
    print(run_smp_handoff(params=_network_params(args)).render())
    print()
    print(run_wake_cost().render())
    print()
    print(render_release_opt(run_release_opt()))
    print()
    print(render_lock_algorithms(run_lock_algorithms()))


def _microbench(args) -> None:
    from .experiments.microbench import run_microbench

    print(run_microbench(params=_network_params(args)).render())


def _fairness(args) -> None:
    from .experiments.ablations import render_lock_fairness, run_lock_fairness

    data = run_lock_fairness(
        nprocs=(args.procs[0] if args.procs else 8),
        iterations=args.iterations or 200,
        params=_network_params(args),
    )
    print(render_lock_fairness(data))


def _app(args) -> None:
    from .experiments.app_scaling import AppScalingConfig, run_app_scaling

    cfg = AppScalingConfig(
        nprocs_list=tuple(args.procs) if args.procs else AppScalingConfig.nprocs_list,
        iterations=args.iterations or 10,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )
    print(run_app_scaling(cfg).render())


def _faults(args) -> None:
    from .experiments.faultbench import FaultBenchConfig, run_faultbench

    _validate_fault_args(args)
    cfg = FaultBenchConfig(
        nprocs=(args.procs[0] if args.procs else FaultBenchConfig.nprocs),
        procs_per_node=args.ppn,
        drop_rates=(
            (0.0, args.drop_rate)
            if args.drop_rate
            else FaultBenchConfig.drop_rates
        ),
        fault_seed=(
            args.fault_seed
            if args.fault_seed is not None
            else FaultBenchConfig.fault_seed
        ),
        retry_timeout_us=args.retry_timeout,
        params=_preset(args.network),
    )
    print(run_faultbench(cfg).render())


def _chaos(args) -> int:
    from .experiments.chaosbench import ChaosBenchConfig, run_chaosbench

    defaults = ChaosBenchConfig()
    overrides = {}
    if args.procs:
        overrides["nprocs"] = args.procs[0]
    if args.ppn != 1:
        overrides["procs_per_node"] = args.ppn
    if args.lock:
        overrides["lock_kind"] = args.lock
    if args.kill_seed is not None:
        overrides["kill_seed"] = args.kill_seed
    if args.kill:
        barrier_kills, lock_kills = [], []
        for spec in args.kill:
            rank, at_us = _parse_kill(spec)
            if at_us < defaults.barrier_hold_us:
                barrier_kills.append((rank, at_us))
            else:
                lock_kills.append((rank, at_us))
        overrides["barrier_kills"] = tuple(barrier_kills)
        overrides["lock_kills"] = tuple(lock_kills)
    if args.partition:
        overrides["partitions"] = tuple(
            _parse_partition(spec) for spec in args.partition
        )
    if args.stall:
        overrides["stalls"] = tuple(_parse_stall(spec) for spec in args.stall)
    if (args.partition or args.stall) and not args.kill:
        # A transient-only run: measure freeze/heal/rejoin without the
        # stock crash schedule (which assumes the default process count).
        overrides.setdefault("barrier_kills", ())
        overrides.setdefault("lock_kills", ())
    params = _preset(args.network)
    retry = getattr(args, "retry_timeout", None)
    if retry is not None:
        _validate_fault_args(args)
        params = params.with_(retry_timeout_us=retry)
    elif args.kill or args.partition or args.stall:
        # Same default as _network_params: under injected faults the
        # retransmission timeout is RTT-estimated unless pinned.
        params = params.with_(adaptive_retry=True)
    overrides["params"] = params
    try:
        result = run_chaosbench(ChaosBenchConfig(**overrides))
    except ValueError as exc:
        # Topology-level legality (node 0 stays, strict majority, rank 0
        # never stalled) is checked by chaosbench against --procs/--ppn.
        raise _CliError(str(exc))
    print(result.render())
    return 0 if result.all_ok() else 1


def _nic(args) -> None:
    from .experiments.nicbench import NicBenchConfig, run_nicbench
    from .experiments.report import nicbench_to_csv, write_csv

    cfg = NicBenchConfig(
        nprocs_list=(
            tuple(args.procs) if args.procs else NicBenchConfig.nprocs_list
        ),
        iterations=args.iterations or 100,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )
    result = run_nicbench(cfg, jobs=args.jobs)
    print(result.render())
    if args.csv:
        path = write_csv(nicbench_to_csv(result), args.csv, "ablation_nic")
        print(f"csv written: {path}")


def _scalebench(args) -> None:
    import json
    from pathlib import Path

    from .experiments.report import scalebench_to_csv, write_csv
    from .experiments.scalebench import ScaleBenchConfig, run_scalebench

    if args.coalesce and args.ppn < 2:
        raise _CliError("--coalesce requires --ppn > 1")
    cfg = ScaleBenchConfig(
        nprocs_list=(
            tuple(args.procs) if args.procs else ScaleBenchConfig.nprocs_list
        ),
        iterations=args.iterations or ScaleBenchConfig.iterations,
        procs_per_node=args.ppn,
        params=_network_params(args),
        coalesce=args.coalesce,
        wall_budget_s=args.time_budget,
    )
    try:
        result = run_scalebench(cfg, jobs=args.jobs)
    except ValueError as exc:
        # Variant/coalesce legality (divisibility, coalescible variants)
        # is checked by scalebench against --procs/--ppn.
        raise _CliError(str(exc))
    print(result.render())
    if args.csv:
        path = write_csv(scalebench_to_csv(result), args.csv, "scalebench")
        print(f"csv written: {path}")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(result.to_json(), indent=2) + "\n"
        )
        print(f"json written: {args.json_out}")


def _chaos_defaults(args) -> int:
    """Chaos summary for ``repro all``: stock kills regardless of --procs.

    The default victim ranks assume the default process count, so the
    sweep flags that resize other experiments are deliberately ignored.
    """
    from .experiments.chaosbench import ChaosBenchConfig, run_chaosbench

    result = run_chaosbench(ChaosBenchConfig(params=_preset(args.network)))
    print(result.render())
    return 0 if result.all_ok() else 1


def _fuzz(args) -> int:
    """``repro fuzz``: campaigns, replay, corpus replay, oracle self-test."""
    from pathlib import Path

    from .fuzz import replay_corpus, replay_seed, run_campaign
    from .fuzz.selftest import run_self_test

    if args.self_test:
        result = run_self_test(budget=args.self_test_budget)
        print(result.render())
        return 0 if result.all_caught() else 1

    if args.corpus is not None:
        corpus_dir = Path(args.corpus)
        if not corpus_dir.is_dir():
            raise _CliError(f"--corpus {args.corpus!r} is not a directory")
        results = replay_corpus(corpus_dir)
        if not results:
            raise _CliError(f"--corpus {args.corpus!r} holds no *.json entries")
        failed = False
        for name, outcome in results:
            print(f"[{'ok' if outcome.ok() else 'FAIL'}] {name}")
            if not outcome.ok():
                print(outcome.render())
                failed = True
        return 1 if failed else 0

    if args.replay is not None:
        outcome = replay_seed(args.replay)
        print(outcome.render())
        if args.json_out:
            Path(args.json_out).write_text(outcome.to_json() + "\n")
            print(f"json written: {args.json_out}")
        return 0 if outcome.ok() else 1

    num_seeds = args.seeds
    if num_seeds is None:
        num_seeds = None if args.time_budget is not None else 50
    campaign = run_campaign(
        start_seed=args.start_seed,
        num_seeds=num_seeds,
        time_budget_s=args.time_budget,
        do_shrink=not args.no_shrink,
    )
    print(campaign.render())
    if args.json_out:
        Path(args.json_out).write_text(campaign.to_json() + "\n")
        print(f"json written: {args.json_out}")
    return 0 if campaign.ok() else 1


def _mc(args) -> int:
    """``repro mc``: RMCheck schedule exploration over named targets."""
    import json
    from pathlib import Path

    from .mc import (
        TARGETS,
        explore,
        get_target,
        load_counterexample,
        replay_counterexample,
    )
    from .mc.explore import MC_SIM_CAP_US

    if args.self_test:
        from .mc.selftest import run_mc_self_test

        result = run_mc_self_test()
        print(result.render())
        return 0 if result.all_caught() else 1

    if args.schedule is not None:
        outcome = replay_counterexample(load_counterexample(args.schedule))
        print(outcome.render())
        return 0 if outcome.ok() else 1

    # (name, scenario, window, budget, cap, expect_exhaustive) per job.
    jobs = []
    if args.scenario is not None:
        from .fuzz.scenario import generate

        scenario = generate(args.scenario)
        jobs.append(
            (
                None,
                scenario,
                args.window if args.window is not None else 0.0,
                args.budget if args.budget is not None else 2000,
                args.cap if args.cap is not None else MC_SIM_CAP_US,
                False,
            )
        )
    else:
        names = [args.target] if args.target else sorted(TARGETS)
        for name in names:
            try:
                t = get_target(name)
            except KeyError as exc:
                raise _CliError(str(exc))
            jobs.append(
                (
                    t.name,
                    t.scenario,
                    args.window if args.window is not None else t.window,
                    args.budget if args.budget is not None else t.budget,
                    args.cap if args.cap is not None else t.sim_cap_us,
                    t.expect_exhaustive,
                )
            )

    rc = 0
    results = []
    for name, scenario, window, budget, cap, expect_exhaustive in jobs:
        result = explore(
            scenario, window=window, budget=budget, sim_cap_us=cap, target=name
        )
        results.append(result)
        print(result.render())
        if not result.ok():
            rc = 1
            if args.ce_out:
                out_dir = Path(args.ce_out)
                out_dir.mkdir(parents=True, exist_ok=True)
                label = name or f"seed{scenario.seed}"
                path = out_dir / f"counterexample-{label}.json"
                path.write_text(
                    json.dumps(result.counterexample, indent=2) + "\n"
                )
                print(f"counterexample written: {path}")
        elif expect_exhaustive and not result.exhausted:
            rc = 1
            print(
                f"armci-repro: mc: {name} no longer exhausts within its "
                f"budget ({budget}) — schedule space regression",
                file=sys.stderr,
            )
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps([json.loads(r.to_json()) for r in results], indent=2)
            + "\n"
        )
        print(f"json written: {args.json_out}")
    return rc


def _check(args) -> int:
    """``repro check [target]``: RMCSan over representative workloads."""
    if args.lint:
        from .analysis import run_lint
        from .analysis.lint import render_findings

        findings = run_lint()
        print(render_findings(findings))
        return 1 if findings and args.strict else 0

    from .analysis import run_sanitized_target

    failed = False
    for label, report in run_sanitized_target(args.target or "all"):
        total = sum(report.counts.values())
        print(
            f"[{'ok' if report.ok() else 'FAIL'}] {label}: "
            f"{report.events_analyzed} events, {total} violation(s)"
        )
        if not report.ok():
            print(report.render())
            failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.trace_out:
        from .analysis import capture

        capture.enable(args.trace_out)
    try:
        rc = _dispatch(args)
    except _CliError as exc:
        print(f"armci-repro: error: {exc}", file=sys.stderr)
        rc = 2
    finally:
        if args.trace_out:
            from .analysis import capture

            flushed = capture.flush()
            if flushed is not None:
                path, runs, events = flushed
                print(f"trace written: {path} ({runs} run(s), {events} event(s))")
    return rc


def _dispatch(args) -> int:
    if args.experiment == "fig7":
        _fig7(args)
    elif args.experiment in ("fig8", "fig9", "fig10"):
        _locks(args, args.experiment)
    elif args.experiment == "locks":
        _locks(args)
    elif args.experiment == "ablations":
        _ablations(args)
    elif args.experiment == "app":
        _app(args)
    elif args.experiment == "microbench":
        _microbench(args)
    elif args.experiment == "fairness":
        _fairness(args)
    elif args.experiment == "faults":
        _faults(args)
    elif args.experiment == "chaos":
        return _chaos(args)
    elif args.experiment == "nic":
        _nic(args)
    elif args.experiment == "scalebench":
        _scalebench(args)
    elif args.experiment == "fuzz":
        return _fuzz(args)
    elif args.experiment == "mc":
        return _mc(args)
    elif args.experiment == "validate":
        from .experiments.validate import run_validation

        checks, report = run_validation(quick=True)
        print(report)
        return 0 if all(c.passed for c in checks) else 1
    elif args.experiment == "check":
        return _check(args)
    elif args.experiment == "all":
        _fig7(args)
        print()
        _locks(args)
        _ablations(args)
        print()
        _app(args)
        print()
        _faults(args)
        print()
        rc = _chaos_defaults(args)
        print()
        _nic(args)
        return rc
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
