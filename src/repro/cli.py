"""Command-line entry point: regenerate any of the paper's figures.

Usage (installed as ``armci-repro``, or ``python -m repro``)::

    armci-repro fig7                # GA_Sync time + factor (Figure 7)
    armci-repro fig8                # lock request+release (Figure 8)
    armci-repro fig9                # lock acquire (Figure 9)
    armci-repro fig10               # lock release (Figure 10)
    armci-repro locks               # Figures 8-10 from one run
    armci-repro ablations           # all five ablation studies
    armci-repro faults              # sync cost + retry volume vs drop rate
    armci-repro chaos               # crash-stop kills + membership recovery
    armci-repro nic                 # host vs NIC-offloaded barrier ablation
    armci-repro scalebench          # barrier scaling to 1024 processes
    armci-repro all                 # everything above
    armci-repro fig7 --iterations 100 --network gige
    armci-repro fig7 --jobs 4       # shard sweep cells over 4 workers
    armci-repro faults --drop-rate 0.05 --fault-seed 7 --retry-timeout 40
    armci-repro chaos --kill 5:60 --kill 6:900 --lock mcs --kill-seed 7

Fault options: ``--drop-rate`` enables seeded link-fault injection (with
the reliable ACK/retransmit layer) on *any* experiment — with the
``faults`` experiment it selects the sweep's single non-zero point;
``--fault-seed`` pins the fault RNG stream and ``--retry-timeout`` the
first retransmission timeout.

Chaos options: each ``--kill RANK:AT_US`` schedules a permanent crash-stop
failure of RANK at AT_US simulated microseconds.  Kills before the barrier
hold point strike mid-exchange inside ``ARMCI_Barrier()``; later kills
strike while RANK holds the contended lock (``--lock`` picks the
algorithm).  ``--kill-seed`` pins the heartbeat/detector RNG stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    Fig7Config,
    LockBenchConfig,
    run_fig7,
    run_lock_series,
)
from .experiments.ablations import (
    render_release_opt,
    run_crossover,
    run_fence_modes,
    run_release_opt,
    run_smp_handoff,
    run_wake_cost,
)
from .experiments.lockbench import comparison_from_series
from .net.params import _preset

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="armci-repro",
        description=(
            "Reproduce the figures of 'Optimizing Synchronization Operations "
            "for Remote Memory Communication Systems' (IPPS 2003) on a "
            "simulated Myrinet cluster."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=["fig7", "fig8", "fig9", "fig10", "locks", "ablations", "app",
                 "microbench", "fairness", "faults", "chaos", "nic",
                 "scalebench", "validate", "check", "all"],
        help="which experiment to regenerate (or 'check' to run RMCSan)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "for 'check': which workload to sanitize "
            "(fig7, locks, faultbench, chaos, nic; default all)"
        ),
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="with 'check': run the static lint pass instead of the "
        "dynamic happens-before checker",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "dump the RMCSan protocol-event trace of every simulated run "
            "to PATH as JSON lines (enables event collection)"
        ),
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="timed iterations per configuration (default: fig7 100, locks 400)",
    )
    parser.add_argument(
        "--network",
        default="myrinet2000",
        help="network preset: myrinet2000 (default), gige, quadrics",
    )
    parser.add_argument(
        "--procs",
        type=int,
        nargs="+",
        default=None,
        help="process counts to sweep (default: paper's)",
    )
    parser.add_argument(
        "--ppn",
        type=int,
        default=1,
        help="processes per SMP node (default 1, as in the paper's runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "shard independent sweep cells over N worker processes "
            "(0 = one per core); simulated results are identical to a "
            "serial run (applies to fig7, nic, scalebench)"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write tidy CSV series for plotting into DIR",
    )
    parser.add_argument(
        "--drop-rate",
        type=float,
        default=None,
        metavar="P",
        help=(
            "inject seeded link faults: drop each inter-node transmission "
            "with probability P (reliable delivery layer enabled); for the "
            "'faults' experiment this picks the sweep's non-zero point"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed for the fault-injection RNG stream (independent of jitter)",
    )
    parser.add_argument(
        "--retry-timeout",
        type=float,
        default=None,
        metavar="US",
        help="reliable layer: first retransmission timeout in simulated us",
    )
    parser.add_argument(
        "--kill",
        action="append",
        default=None,
        metavar="RANK:AT_US",
        help=(
            "chaos: kill RANK at AT_US simulated microseconds (repeatable); "
            "kills before the barrier hold point hit the barrier exchange, "
            "later ones hit the lock holder"
        ),
    )
    parser.add_argument(
        "--kill-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="chaos: seed for the heartbeat/failure-detector RNG stream",
    )
    parser.add_argument(
        "--lock",
        default=None,
        metavar="KIND",
        help=(
            "chaos: lock algorithm to recover "
            "(ticket, lh, server, hybrid, mcs, naimi, raymond; default hybrid)"
        ),
    )
    return parser


def _network_params(args):
    """Resolve the preset plus any fault/reliability options."""
    from .net.faults import FaultPlan

    params = _preset(args.network)
    overrides = {}
    if args.retry_timeout is not None:
        overrides["retry_timeout_us"] = args.retry_timeout
    if args.drop_rate:
        overrides["faults"] = FaultPlan.uniform(
            drop_rate=args.drop_rate,
            dup_rate=args.drop_rate / 2.0,
            seed=args.fault_seed,
        )
    return params.with_(**overrides) if overrides else params


def _fig7(args) -> None:
    from .experiments.report import comparison_to_csv, write_csv

    cfg = Fig7Config(
        nprocs_list=tuple(args.procs) if args.procs else Fig7Config.nprocs_list,
        iterations=args.iterations or 100,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )
    comparison = run_fig7(cfg, jobs=args.jobs)
    print(comparison.render())
    if args.csv:
        path = write_csv(comparison_to_csv(comparison), args.csv, "fig7_ga_sync")
        print(f"csv written: {path}")


def _lock_cfg(args) -> LockBenchConfig:
    return LockBenchConfig(
        nprocs_list=tuple(args.procs) if args.procs else LockBenchConfig.nprocs_list,
        iterations=args.iterations or 400,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )


def _locks(args, which: Optional[str] = None) -> None:
    from .experiments.report import lock_series_to_csv, write_csv

    series = run_lock_series(_lock_cfg(args))
    figs = {
        "fig8": ("roundtrip", "Figure 8: time to request and release a lock"),
        "fig9": ("acquire", "Figure 9: time to request and acquire a lock"),
        "fig10": ("release", "Figure 10: time to release a lock"),
    }
    selected = [which] if which else list(figs)
    for key in selected:
        metric, title = figs[key]
        print(comparison_from_series(series, metric, title).render())
        print()
    if args.csv:
        path = write_csv(lock_series_to_csv(series), args.csv, "figs8_9_10_locks")
        print(f"csv written: {path}")


def _ablations(args) -> None:
    from .experiments.ablations import render_lock_algorithms, run_lock_algorithms

    print(run_crossover(params=_network_params(args)).render())
    print()
    print(run_fence_modes(params=_network_params(args)).render())
    print()
    print(run_smp_handoff(params=_network_params(args)).render())
    print()
    print(run_wake_cost().render())
    print()
    print(render_release_opt(run_release_opt()))
    print()
    print(render_lock_algorithms(run_lock_algorithms()))


def _microbench(args) -> None:
    from .experiments.microbench import run_microbench

    print(run_microbench(params=_network_params(args)).render())


def _fairness(args) -> None:
    from .experiments.ablations import render_lock_fairness, run_lock_fairness

    data = run_lock_fairness(
        nprocs=(args.procs[0] if args.procs else 8),
        iterations=args.iterations or 200,
        params=_network_params(args),
    )
    print(render_lock_fairness(data))


def _app(args) -> None:
    from .experiments.app_scaling import AppScalingConfig, run_app_scaling

    cfg = AppScalingConfig(
        nprocs_list=tuple(args.procs) if args.procs else AppScalingConfig.nprocs_list,
        iterations=args.iterations or 10,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )
    print(run_app_scaling(cfg).render())


def _faults(args) -> None:
    from .experiments.faultbench import FaultBenchConfig, run_faultbench

    cfg = FaultBenchConfig(
        nprocs=(args.procs[0] if args.procs else FaultBenchConfig.nprocs),
        procs_per_node=args.ppn,
        drop_rates=(
            (0.0, args.drop_rate)
            if args.drop_rate
            else FaultBenchConfig.drop_rates
        ),
        fault_seed=(
            args.fault_seed
            if args.fault_seed is not None
            else FaultBenchConfig.fault_seed
        ),
        retry_timeout_us=args.retry_timeout,
        params=_preset(args.network),
    )
    print(run_faultbench(cfg).render())


def _chaos(args) -> int:
    from .experiments.chaosbench import ChaosBenchConfig, run_chaosbench

    defaults = ChaosBenchConfig()
    overrides = {}
    if args.procs:
        overrides["nprocs"] = args.procs[0]
    if args.ppn != 1:
        overrides["procs_per_node"] = args.ppn
    if args.lock:
        overrides["lock_kind"] = args.lock
    if args.kill_seed is not None:
        overrides["kill_seed"] = args.kill_seed
    if args.kill:
        barrier_kills, lock_kills = [], []
        for spec in args.kill:
            try:
                rank_s, at_s = spec.split(":", 1)
                rank, at_us = int(rank_s), float(at_s)
            except ValueError:
                print(f"bad --kill spec {spec!r}, expected RANK:AT_US")
                return 2
            if at_us < defaults.barrier_hold_us:
                barrier_kills.append((rank, at_us))
            else:
                lock_kills.append((rank, at_us))
        overrides["barrier_kills"] = tuple(barrier_kills)
        overrides["lock_kills"] = tuple(lock_kills)
    overrides["params"] = _preset(args.network)
    result = run_chaosbench(ChaosBenchConfig(**overrides))
    print(result.render())
    return 0 if result.all_ok() else 1


def _nic(args) -> None:
    from .experiments.nicbench import NicBenchConfig, run_nicbench
    from .experiments.report import nicbench_to_csv, write_csv

    cfg = NicBenchConfig(
        nprocs_list=(
            tuple(args.procs) if args.procs else NicBenchConfig.nprocs_list
        ),
        iterations=args.iterations or 100,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )
    result = run_nicbench(cfg, jobs=args.jobs)
    print(result.render())
    if args.csv:
        path = write_csv(nicbench_to_csv(result), args.csv, "ablation_nic")
        print(f"csv written: {path}")


def _scalebench(args) -> None:
    from .experiments.scalebench import ScaleBenchConfig, run_scalebench

    cfg = ScaleBenchConfig(
        nprocs_list=(
            tuple(args.procs) if args.procs else ScaleBenchConfig.nprocs_list
        ),
        iterations=args.iterations or ScaleBenchConfig.iterations,
        procs_per_node=args.ppn,
        params=_network_params(args),
    )
    print(run_scalebench(cfg, jobs=args.jobs).render())


def _chaos_defaults(args) -> int:
    """Chaos summary for ``repro all``: stock kills regardless of --procs.

    The default victim ranks assume the default process count, so the
    sweep flags that resize other experiments are deliberately ignored.
    """
    from .experiments.chaosbench import ChaosBenchConfig, run_chaosbench

    result = run_chaosbench(ChaosBenchConfig(params=_preset(args.network)))
    print(result.render())
    return 0 if result.all_ok() else 1


def _check(args) -> int:
    """``repro check [target]``: RMCSan over representative workloads."""
    if args.lint:
        from .analysis import run_lint
        from .analysis.lint import render_findings

        findings = run_lint()
        print(render_findings(findings))
        return 1 if findings else 0

    from .analysis import run_sanitized_target

    failed = False
    for label, report in run_sanitized_target(args.target or "all"):
        total = sum(report.counts.values())
        print(
            f"[{'ok' if report.ok() else 'FAIL'}] {label}: "
            f"{report.events_analyzed} events, {total} violation(s)"
        )
        if not report.ok():
            print(report.render())
            failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.trace_out:
        from .analysis import capture

        capture.enable(args.trace_out)
    try:
        rc = _dispatch(args)
    finally:
        if args.trace_out:
            from .analysis import capture

            flushed = capture.flush()
            if flushed is not None:
                path, runs, events = flushed
                print(f"trace written: {path} ({runs} run(s), {events} event(s))")
    return rc


def _dispatch(args) -> int:
    if args.experiment == "fig7":
        _fig7(args)
    elif args.experiment in ("fig8", "fig9", "fig10"):
        _locks(args, args.experiment)
    elif args.experiment == "locks":
        _locks(args)
    elif args.experiment == "ablations":
        _ablations(args)
    elif args.experiment == "app":
        _app(args)
    elif args.experiment == "microbench":
        _microbench(args)
    elif args.experiment == "fairness":
        _fairness(args)
    elif args.experiment == "faults":
        _faults(args)
    elif args.experiment == "chaos":
        return _chaos(args)
    elif args.experiment == "nic":
        _nic(args)
    elif args.experiment == "scalebench":
        _scalebench(args)
    elif args.experiment == "validate":
        from .experiments.validate import run_validation

        checks, report = run_validation(quick=True)
        print(report)
        return 0 if all(c.passed for c in checks) else 1
    elif args.experiment == "check":
        return _check(args)
    elif args.experiment == "all":
        _fig7(args)
        print()
        _locks(args)
        _ablations(args)
        print()
        _app(args)
        print()
        _faults(args)
        print()
        rc = _chaos_defaults(args)
        print()
        _nic(args)
        return rc
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
