"""Application-level impact: a Global-Arrays mini-app under both syncs.

The paper's introduction motivates the work with application scalability:
blocked processes "cannot perform useful computation", and sync cost grows
with system size.  This experiment runs a representative GA mini-app — a
power-iteration-style loop (remote assembly puts + GA_Sync + global dot,
the skeleton of many NWChem/Global-Arrays kernels) — and reports the
makespan and the fraction of time spent synchronizing under the original
and the optimized GA_Sync, across system sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..ga.array import GlobalArray
from ..ga.operations import dot
from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from .common import default_params, format_table

__all__ = ["AppScalingConfig", "AppScalingResult", "run_app_scaling"]


@dataclass(frozen=True)
class AppScalingConfig:
    nprocs_list: Tuple[int, ...] = (2, 4, 8, 16)
    iterations: int = 10
    shape: Tuple[int, int] = (128, 128)
    #: Simulated local compute per iteration (µs) — sets the comm/comp ratio.
    compute_us: float = 150.0
    procs_per_node: int = 1
    params: Optional[NetworkParams] = None


@dataclass
class AppScalingResult:
    config: AppScalingConfig
    #: mode -> nprocs -> (makespan_us, sync_share)
    data: Dict[str, Dict[int, Tuple[float, float]]] = field(default_factory=dict)

    def speedup(self, nprocs: int) -> float:
        """Makespan(current) / makespan(new)."""
        return self.data["current"][nprocs][0] / self.data["new"][nprocs][0]

    def render(self) -> str:
        rows = [[
            "procs", "current makespan (us)", "new makespan (us)",
            "current sync %", "new sync %", "app speedup",
        ]]
        for n in sorted(self.data["current"]):
            cur_mk, cur_share = self.data["current"][n]
            new_mk, new_share = self.data["new"][n]
            rows.append([
                str(n), f"{cur_mk:.0f}", f"{new_mk:.0f}",
                f"{100 * cur_share:.1f}", f"{100 * new_share:.1f}",
                f"{self.speedup(n):.2f}",
            ])
        return (
            "== Application impact: GA mini-app under current vs new "
            "GA_Sync ==\n" + format_table(rows)
        )


def _mini_app(ctx, mode: str, cfg: AppScalingConfig):
    """One rank of the mini-app; returns (sync_us, makespan_us)."""
    ga = GlobalArray(ctx, "app", cfg.shape)
    rows, cols = cfg.shape
    start = ctx.now
    sync_us = 0.0
    # Deterministic pseudo-data (no RNG in the timed loop).
    for iteration in range(cfg.iterations):
        # Compute phase (overlappable local work).
        yield ctx.compute(cfg.compute_us)
        # Assembly phase: contribute a strip to every remote block.
        for peer in range(ctx.nprocs):
            if peer == ctx.rank:
                continue
            blk = ga.dist.block(peer)
            strip_rows = min(2, blk.nrows)
            section = (blk.row0, blk.row0 + strip_rows, blk.col0, blk.col1)
            data = np.full(
                (strip_rows, blk.ncols),
                float((ctx.rank + 1) * (iteration + 1)),
            )
            yield from ga.put(section, data)
        # Synchronize: the operation under study.
        t0 = ctx.now
        yield from ga.sync(mode)
        sync_us += ctx.now - t0
        # Reduction phase: a global dot, as in eigensolver loops.
        yield from dot(ga, ga)
    return sync_us, ctx.now - start


def run_app_scaling(cfg: AppScalingConfig = AppScalingConfig()) -> AppScalingResult:
    result = AppScalingResult(config=cfg)
    params = default_params(cfg.params)
    for mode in ("current", "new"):
        result.data[mode] = {}
        for nprocs in cfg.nprocs_list:
            runtime = ClusterRuntime(
                nprocs, procs_per_node=cfg.procs_per_node, params=params
            )
            per_rank = runtime.run_spmd(_mini_app, mode, cfg)
            makespan = max(r[1] for r in per_rank)
            sync_share = (sum(r[0] for r in per_rank) / len(per_rank)) / makespan
            result.data[mode][nprocs] = (makespan, sync_share)
    return result
