"""Substrate microbenchmarks: the calibration table behind the figures.

Papers of this era validate their platform with microbenchmarks before the
headline experiments; this module provides the same for the simulator so
the cost model backing Figures 7-10 is inspectable:

* one-sided **put/get latency** vs message size (local vs remote);
* **atomic rmw** round-trip time (the ops the locks are built from);
* **fence** round trip and **barrier/allreduce** latency vs process count;
* **server occupancy**: requests a single server can absorb per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..mp import collectives
from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from ..runtime.memory import GlobalAddress
from .common import default_params, format_table

__all__ = ["MicrobenchResult", "run_microbench"]


@dataclass
class MicrobenchResult:
    params: NetworkParams
    #: size_bytes -> (put_us, get_us) for remote transfers.
    transfer: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    local_put_us: float = 0.0
    local_get_us: float = 0.0
    rmw_remote_us: float = 0.0
    rmw_local_us: float = 0.0
    fence_rt_us: float = 0.0
    #: nprocs -> (barrier_us, allreduce_us)
    collective: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    server_req_per_ms: float = 0.0

    def render(self) -> str:
        parts = ["== Substrate microbenchmarks (simulated) =="]
        rows = [["size (B)", "remote put (us)", "remote get RT (us)"]]
        for size in sorted(self.transfer):
            put_us, get_us = self.transfer[size]
            rows.append([str(size), f"{put_us:.2f}", f"{get_us:.2f}"])
        parts.append(format_table(rows))
        parts.append(
            f"local put {self.local_put_us:.2f} us | local get "
            f"{self.local_get_us:.2f} us | rmw local {self.rmw_local_us:.2f} us "
            f"| rmw remote RT {self.rmw_remote_us:.2f} us | fence RT "
            f"{self.fence_rt_us:.2f} us"
        )
        rows = [["procs", "barrier (us)", "allreduce[N] (us)"]]
        for n in sorted(self.collective):
            barrier_us, allreduce_us = self.collective[n]
            rows.append([str(n), f"{barrier_us:.2f}", f"{allreduce_us:.2f}"])
        parts.append(format_table(rows))
        parts.append(
            f"single-server throughput: {self.server_req_per_ms:.1f} "
            "small requests / ms"
        )
        return "\n".join(parts)


def _transfer_trial(ctx, cells: int, repeats: int):
    base = ctx.region.alloc_named("micro", max(cells, 1), initial=0)
    if ctx.rank != 0:
        return None
    put_sw = ctx.stopwatch("put")
    get_sw = ctx.stopwatch("get")
    payload = [1.0] * cells
    for _ in range(repeats):
        put_sw.start()
        yield from ctx.armci.put(GlobalAddress(1, base), payload)
        put_sw.stop()
        yield from ctx.armci.fence(1)  # drain so puts don't queue up
        get_sw.start()
        yield from ctx.armci.get(GlobalAddress(1, base), cells)
        get_sw.stop()
    return put_sw.mean(), get_sw.mean()


def _local_trial(ctx, cells: int, repeats: int):
    base = ctx.region.alloc_named("micro_local", cells, initial=0)
    put_sw = ctx.stopwatch("lput")
    get_sw = ctx.stopwatch("lget")
    rmw_sw = ctx.stopwatch("lrmw")
    payload = [1.0] * cells
    ga = GlobalAddress(ctx.rank, base)
    for _ in range(repeats):
        put_sw.start()
        yield from ctx.armci.put(ga, payload)
        put_sw.stop()
        get_sw.start()
        yield from ctx.armci.get(ga, cells)
        get_sw.stop()
        rmw_sw.start()
        yield from ctx.armci.rmw("fetch_add", ga, 1)
        rmw_sw.stop()
    return put_sw.mean(), get_sw.mean(), rmw_sw.mean()


def _rmw_fence_trial(ctx, repeats: int):
    base = ctx.region.alloc_named("micro_rmw", 2, initial=0)
    if ctx.rank != 0:
        return None
    rmw_sw = ctx.stopwatch("rmw")
    fence_sw = ctx.stopwatch("fence")
    for _ in range(repeats):
        rmw_sw.start()
        yield from ctx.armci.rmw("fetch_add", GlobalAddress(1, base), 1)
        rmw_sw.stop()
        yield from ctx.armci.put(GlobalAddress(1, base), [0.0])
        fence_sw.start()
        yield from ctx.armci.fence(1)
        fence_sw.stop()
    return rmw_sw.mean(), fence_sw.mean()


def _collective_trial(ctx, repeats: int):
    barrier_sw = ctx.stopwatch("barrier")
    allreduce_sw = ctx.stopwatch("allreduce")
    vec = [float(ctx.rank)] * ctx.nprocs
    for _ in range(repeats):
        barrier_sw.start()
        yield from collectives.barrier(ctx.comm)
        barrier_sw.stop()
        allreduce_sw.start()
        yield from collectives.allreduce_sum(ctx.comm, vec)
        allreduce_sw.stop()
    return barrier_sw.mean(), allreduce_sw.mean()


def _server_throughput_trial(ctx, repeats: int):
    """Saturate rank 1's server with back-to-back tiny puts from rank 0."""
    base = ctx.region.alloc_named("micro_tput", 1, initial=0)
    if ctx.rank != 0:
        return None
    t0 = ctx.now
    for _ in range(repeats):
        yield from ctx.armci.put(GlobalAddress(1, base), [1.0])
    yield from ctx.armci.fence(1)
    elapsed_ms = (ctx.now - t0) / 1000.0
    return repeats / elapsed_ms


def run_microbench(
    sizes_bytes: Sequence[int] = (8, 64, 512, 4096, 32768),
    nprocs_list: Sequence[int] = (2, 4, 8, 16),
    repeats: int = 50,
    params: Optional[NetworkParams] = None,
) -> MicrobenchResult:
    params = default_params(params)
    result = MicrobenchResult(params=params)

    for size in sizes_bytes:
        cells = max(size // 8, 1)
        runtime = ClusterRuntime(2, params=params)
        out = runtime.run_spmd(_transfer_trial, cells, repeats)
        result.transfer[size] = out[0]

    runtime = ClusterRuntime(1, params=params)
    local = runtime.run_spmd(_local_trial, 1, repeats)[0]
    result.local_put_us, result.local_get_us, result.rmw_local_us = local

    runtime = ClusterRuntime(2, params=params)
    rmw_fence = runtime.run_spmd(_rmw_fence_trial, repeats)[0]
    result.rmw_remote_us, result.fence_rt_us = rmw_fence

    for nprocs in nprocs_list:
        runtime = ClusterRuntime(nprocs, params=params)
        per_rank = runtime.run_spmd(_collective_trial, repeats)
        barrier_us = max(r[0] for r in per_rank)
        allreduce_us = max(r[1] for r in per_rank)
        result.collective[nprocs] = (barrier_us, allreduce_us)

    runtime = ClusterRuntime(2, params=params)
    result.server_req_per_ms = runtime.run_spmd(_server_throughput_trial, 400)[0]
    return result
