"""Figure 8: average time to request and release the lock (+ factor).

Paper's observation: for two or more competing processes the new (MCS)
implementation wins because passing the lock costs one message instead of
two; for a single process the new implementation is *worse*, because every
release performs a blocking compare&swap round trip where the original just
fires an unlock message.  Peak factor ~1.25 at 8 nodes, dipping slightly at
16 while the absolute gap keeps growing.
"""

from __future__ import annotations

from .common import Comparison
from .lockbench import LockBenchConfig, comparison_from_series, run_lock_series

__all__ = ["run_fig8"]


def run_fig8(cfg: LockBenchConfig = LockBenchConfig()) -> Comparison:
    series = run_lock_series(cfg)
    comparison = comparison_from_series(
        series,
        metric="roundtrip",
        title="Figure 8: time to request and release a lock (current vs new)",
    )
    comparison.notes.append(
        f"{cfg.iterations} iterations/process; nprocs=1 averages the "
        "local-lock and remote-lock cases (as in the paper)"
    )
    return comparison
