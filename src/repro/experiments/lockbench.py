"""The §4.2 lock micro-benchmark shared by Figures 8, 9 and 10.

    "we had each node repeatedly request and release a lock located at
    one of the processes.  We then timed how long each of these
    operations took.  We performed 10,000 iterations of this test and
    took the average times over all iterations and over all processes.
    By varying the number of processes we varied the load on the lock.
    When only one process is performing the test, we took two cases, one
    where the lock was local and one where the lock was remote.  The
    numbers which we reported in the graphs are a average of these two."

One run produces three metrics:

* request+acquire time (Figure 9),
* release time (Figure 10),
* their sum — the "time to request and release" of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..locks import make_lock
from ..mp import collectives
from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from .common import Comparison, default_params

__all__ = ["LockBenchConfig", "LockPoint", "run_lock_point", "run_lock_series"]

#: Process counts of the lock figures (1 is the special two-case average).
LOCK_NPROCS: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class LockBenchConfig:
    """Parameters of the lock stress test."""

    nprocs_list: Tuple[int, ...] = LOCK_NPROCS
    #: Timed lock/unlock iterations per process (paper: 10,000).
    iterations: int = 400
    #: Untimed warm-up iterations (steady-state contention).
    warmup: int = 16
    #: Benchmark-loop CPU between consecutive operations (loop control and
    #: the timer reads bracketing each op in the paper's test); charged
    #: before each acquire and each release, outside the timed window.
    op_gap_us: float = 3.0
    procs_per_node: int = 1
    params: Optional[NetworkParams] = None
    #: Extra kwargs for the new lock (e.g. optimistic_release=True).
    mcs_kwargs: Optional[dict] = None


@dataclass
class LockPoint:
    """Pooled per-operation means for one (kind, nprocs) configuration."""

    kind: str
    nprocs: int
    acquire_us: float
    release_us: float

    @property
    def roundtrip_us(self) -> float:
        """Request+release time — Figure 8's metric."""
        return self.acquire_us + self.release_us


def lock_workload(ctx, kind: str, home_rank: int, cfg: LockBenchConfig, active=None, lock_kwargs=None):
    """Per-rank program: hammer one lock; returns (acquire, release) samples."""
    lock = make_lock(
        kind, ctx, home_rank=home_rank, name="bench", **(lock_kwargs or {})
    )
    yield from collectives.barrier(ctx.comm)
    if active is not None and ctx.rank not in active:
        return None
    for _w in range(cfg.warmup):
        yield from lock.acquire()
        yield from lock.release()
    lock.acquire_sw.reset()
    lock.release_sw.reset()
    lock.total_sw.reset()
    for _i in range(cfg.iterations):
        if cfg.op_gap_us > 0.0:
            yield ctx.env.timeout(cfg.op_gap_us)
        yield from lock.acquire()
        if cfg.op_gap_us > 0.0:
            yield ctx.env.timeout(cfg.op_gap_us)
        yield from lock.release()
    return (lock.acquire_sw.samples, lock.release_sw.samples)


def _pooled_means(per_rank) -> Tuple[float, float]:
    acquire, release = [], []
    for entry in per_rank:
        if entry is None:
            continue
        acquire.extend(entry[0])
        release.extend(entry[1])
    return sum(acquire) / len(acquire), sum(release) / len(release)


def run_lock_point(kind: str, nprocs: int, cfg: LockBenchConfig) -> LockPoint:
    """One (algorithm, process count) measurement.

    ``nprocs == 1`` follows the paper: average of a local-lock case and a
    remote-lock case (the latter homed at an otherwise idle process on
    another node).
    """
    params = default_params(cfg.params)
    lock_kwargs = cfg.mcs_kwargs if (kind == "mcs" and cfg.mcs_kwargs) else None
    if nprocs == 1:
        cases = []
        for home in (0, 1):
            runtime = ClusterRuntime(
                2, procs_per_node=cfg.procs_per_node, params=params
            )
            per_rank = runtime.run_spmd(
                lock_workload, kind, home, cfg, {0}, lock_kwargs
            )
            cases.append(_pooled_means(per_rank))
        acquire = sum(c[0] for c in cases) / 2
        release = sum(c[1] for c in cases) / 2
        return LockPoint(kind, 1, acquire, release)
    runtime = ClusterRuntime(nprocs, procs_per_node=cfg.procs_per_node, params=params)
    per_rank = runtime.run_spmd(lock_workload, kind, 0, cfg, None, lock_kwargs)
    acquire, release = _pooled_means(per_rank)
    return LockPoint(kind, nprocs, acquire, release)


def run_lock_series(
    cfg: LockBenchConfig = LockBenchConfig(),
    kinds: Sequence[str] = ("hybrid", "mcs"),
) -> Dict[str, Dict[int, LockPoint]]:
    """All (kind, nprocs) points; basis for Figures 8-10."""
    out: Dict[str, Dict[int, LockPoint]] = {}
    for kind in kinds:
        out[kind] = {}
        for nprocs in cfg.nprocs_list:
            out[kind][nprocs] = run_lock_point(kind, nprocs, cfg)
    return out


def comparison_from_series(
    series: Dict[str, Dict[int, LockPoint]],
    metric: str,
    title: str,
    baseline: str = "hybrid",
    improved: str = "mcs",
) -> Comparison:
    """Project a lock series onto one metric as a Comparison table."""
    comparison = Comparison(
        title=title,
        metric=metric,
        baseline="current",
        improved="new",
    )
    attr = {
        "roundtrip": "roundtrip_us",
        "acquire": "acquire_us",
        "release": "release_us",
    }[metric]
    for variant, kind in (("current", baseline), ("new", improved)):
        for nprocs, point in series[kind].items():
            comparison.record(variant, nprocs, getattr(point, attr))
    return comparison
