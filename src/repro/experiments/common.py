"""Shared experiment infrastructure: runners, results, and table formatting.

Every experiment reports *simulated* microseconds (deterministic; no
wall-clock noise) in the same shape as the paper's figures: one series per
implementation over the process counts, plus the factor-of-improvement
series of the (b) panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.params import NetworkParams, myrinet2000

__all__ = [
    "Comparison",
    "DEFAULT_NPROCS",
    "format_table",
    "geometric_mean",
]

#: The paper evaluates 1..16 processes on 16 nodes.
DEFAULT_NPROCS: Tuple[int, ...] = (2, 4, 8, 16)


@dataclass
class Comparison:
    """Two series over process counts + derived improvement factors.

    ``values[variant][nprocs] -> microseconds``.  ``baseline`` names the
    variant the paper calls "current"; ``factor(n)`` is baseline/improved,
    i.e. >1 means the new implementation wins.
    """

    title: str
    metric: str
    baseline: str
    improved: str
    values: Dict[str, Dict[int, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def record(self, variant: str, nprocs: int, value_us: float) -> None:
        self.values.setdefault(variant, {})[nprocs] = value_us

    def nprocs_list(self) -> List[int]:
        keys = set()
        for series in self.values.values():
            keys.update(series)
        return sorted(keys)

    def get(self, variant: str, nprocs: int) -> float:
        return self.values[variant][nprocs]

    def factor(self, nprocs: int) -> float:
        """Baseline / improved (the paper's "factor of improvement")."""
        return self.get(self.baseline, nprocs) / self.get(self.improved, nprocs)

    def factors(self) -> Dict[int, float]:
        return {n: self.factor(n) for n in self.nprocs_list()}

    def max_factor(self) -> float:
        return max(self.factors().values())

    # -- rendering ---------------------------------------------------------------

    def to_rows(self) -> List[List[str]]:
        header = ["procs", f"{self.baseline} (us)", f"{self.improved} (us)", "factor"]
        rows = [header]
        for n in self.nprocs_list():
            rows.append(
                [
                    str(n),
                    f"{self.get(self.baseline, n):.1f}",
                    f"{self.get(self.improved, n):.1f}",
                    f"{self.factor(n):.2f}",
                ]
            )
        return rows

    def render(self) -> str:
        lines = [f"== {self.title} ==", f"metric: {self.metric}"]
        lines.append(format_table(self.to_rows()))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def format_table(rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table with right-aligned columns."""
    if not rows:
        return ""
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    out = []
    for idx, row in enumerate(rows):
        out.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def geometric_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return float("nan")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def default_params(params: Optional[NetworkParams]) -> NetworkParams:
    return params if params is not None else myrinet2000()
