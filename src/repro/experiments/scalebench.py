"""Barrier scaling study: GA_Sync variants at up to 1024 processes.

The paper evaluates on 2–16 processes; related NIC-collective work
(Yu et al. on Quadrics/Myrinet, and the 1024-core RISC-V barrier study)
pushes barrier synchronization to 1024 participants.  This experiment runs
the repo's three combined fence+barrier implementations —

* ``host-exchange`` — the paper's 3-stage binary exchange on the hosts
  (GA_Sync mode ``new``),
* ``nic-exchange`` — NIC-offloaded recursive-doubling exchange,
* ``nic-tree`` — NIC-offloaded combining tree,

at N ∈ {64, 128, 256, 512, 1024} simulated processes and reports both the
*simulated* mean GA_Sync time and the *wall-clock* simulator throughput
(events/sec) of each cell, so the table doubles as a kernel perf probe.

Unlike the Figure 7 workload (every rank writes a strip into every remote
block — O(N²) puts per iteration, infeasible at N=1024), each rank here
issues one small put to its ring neighbor before synchronizing: the put
keeps the fence half of GA_Sync honest (there is always an outstanding
operation to complete) while the cost under study stays the barrier's
O(log N) exchange.

Wall-clock numbers are machine-dependent; only the simulated µs column is
reproducible bit-for-bit.  This experiment is therefore *not* part of
``scripts/regenerate_results.py`` — it is reached via ``repro scalebench``
and the perf harness in ``benchmarks/perf/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from .common import default_params, format_table
from .parallel import run_cells

__all__ = [
    "ScaleBenchConfig",
    "ScaleBenchResult",
    "ScaleCell",
    "run_scalebench",
    "SCALE_VARIANTS",
]

#: The compared barrier implementations, in table-column order.
SCALE_VARIANTS: Tuple[str, ...] = ("host-exchange", "nic-exchange", "nic-tree")

#: Default process counts (matches the 1024-participant related work).
SCALE_NPROCS: Tuple[int, ...] = (64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class ScaleBenchConfig:
    """Workload parameters for the barrier scaling study."""

    nprocs_list: Tuple[int, ...] = SCALE_NPROCS
    #: Timed GA_Sync iterations per cell (kept small: one iteration at
    #: N=1024 is ~100k simulated events).
    iterations: int = 5
    #: Cells each rank puts to its ring neighbor before every sync.
    put_cells: int = 8
    procs_per_node: int = 1
    params: Optional[NetworkParams] = None


@dataclass(frozen=True)
class ScaleCell:
    """Measured outcome of one (variant, nprocs) cell."""

    variant: str
    nprocs: int
    #: Mean GA_Sync time over all iterations and ranks (simulated µs).
    sync_us: float
    #: Simulated events processed by the cell's run.
    events: int
    #: Wall-clock seconds for the cell (machine-dependent).
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")


@dataclass
class ScaleBenchResult:
    """``cells[variant][nprocs] -> ScaleCell``."""

    title: str
    cells: Dict[str, Dict[int, ScaleCell]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def record(self, cell: ScaleCell) -> None:
        self.cells.setdefault(cell.variant, {})[cell.nprocs] = cell

    def get(self, variant: str, nprocs: int) -> ScaleCell:
        return self.cells[variant][nprocs]

    def nprocs_list(self) -> List[int]:
        keys = set()
        for series in self.cells.values():
            keys.update(series)
        return sorted(keys)

    def total_events(self) -> int:
        return sum(
            c.events for series in self.cells.values() for c in series.values()
        )

    def total_wall_s(self) -> float:
        return sum(
            c.wall_s for series in self.cells.values() for c in series.values()
        )

    def to_rows(self) -> List[List[str]]:
        header = ["procs"]
        header += [f"{v} (us)" for v in SCALE_VARIANTS]
        header += ["events", "kev/s"]
        rows = [header]
        for n in self.nprocs_list():
            row_cells = [self.get(v, n) for v in SCALE_VARIANTS]
            events = sum(c.events for c in row_cells)
            wall = sum(c.wall_s for c in row_cells)
            rows.append(
                [str(n)]
                + [f"{c.sync_us:.1f}" for c in row_cells]
                + [str(events), f"{events / wall / 1e3:.0f}" if wall else "-"]
            )
        return rows

    def render(self) -> str:
        lines = [
            f"== {self.title} ==",
            "metric: mean GA_Sync time (simulated us) per variant; "
            "events + wall-clock kev/s per row (machine-dependent)",
        ]
        lines.append(format_table(self.to_rows()))
        total_wall = self.total_wall_s()
        if total_wall > 0:
            lines.append(
                f"total: {self.total_events()} events in {total_wall:.2f}s "
                f"wall ({self.total_events() / total_wall / 1e3:.0f} kev/s)"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def scale_workload(ctx, mode: str, cfg: ScaleBenchConfig):
    """Per-rank scaling program: small neighbor put, then timed GA_Sync."""
    from ..ga.sync import ga_sync

    right = (ctx.rank + 1) % ctx.nprocs
    addr = ctx.regions[right].alloc_named(
        "scalebench", max(cfg.put_cells, 1), initial=0.0
    )
    values = [float(ctx.rank)] * cfg.put_cells
    sw = ctx.stopwatch("ga_sync")
    for _iteration in range(cfg.iterations):
        if cfg.put_cells > 0:
            yield from ctx.armci.put_segments(right, [(addr, values)])
        sw.start()
        yield from ga_sync(ctx, mode)
        sw.stop()
    return sw.samples


def _scale_cell(cell) -> ScaleCell:
    """One (variant, nprocs) point (picklable sweep cell)."""
    cfg, variant, mode, params, nprocs = cell
    runtime = ClusterRuntime(
        nprocs, procs_per_node=cfg.procs_per_node, params=params
    )
    start = time.perf_counter()
    per_rank = runtime.run_spmd(scale_workload, mode, cfg)
    wall_s = time.perf_counter() - start
    pooled = [s for samples in per_rank for s in samples]
    return ScaleCell(
        variant=variant,
        nprocs=nprocs,
        sync_us=sum(pooled) / len(pooled),
        events=runtime.env.events_processed,
        wall_s=wall_s,
    )


def run_scalebench(
    cfg: ScaleBenchConfig = ScaleBenchConfig(), jobs: int = 1
) -> ScaleBenchResult:
    """Run the barrier scaling study over all variants and process counts."""
    result = ScaleBenchResult(
        title="Barrier scaling: GA_Sync() time, host vs NIC, N up to 1024"
    )
    base = default_params(cfg.params)
    plans = (
        ("host-exchange", "new", base),
        ("nic-exchange", "nic", base.with_(nic_algorithm="exchange")),
        ("nic-tree", "nic", base.with_(nic_algorithm="tree")),
    )
    cells = [
        (cfg, variant, mode, params, nprocs)
        for variant, mode, params in plans
        for nprocs in cfg.nprocs_list
    ]
    for measured in run_cells(_scale_cell, cells, jobs=jobs):
        result.record(measured)
    result.notes.append(
        f"workload: {cfg.put_cells}-cell put to the ring neighbor, then "
        f"GA_Sync, x{cfg.iterations} iterations per cell"
    )
    result.notes.append(
        "simulated us columns are deterministic; events/sec is wall-clock "
        "and varies by machine (see docs/performance.md)"
    )
    return result
