"""Barrier scaling study: GA_Sync variants at up to 16384 processes.

The paper evaluates on 2–16 processes; related NIC-collective work
(Yu et al. on Quadrics/Myrinet, and the 1024-core RISC-V barrier study)
pushes barrier synchronization to 1024 participants.  This experiment runs
the repo's combined fence+barrier implementations —

* ``host-exchange`` — the paper's 3-stage binary exchange on the hosts
  (GA_Sync mode ``new``),
* ``nic-exchange`` — NIC-offloaded recursive-doubling exchange,
* ``nic-tree`` — NIC-offloaded combining tree,
* ``dissemination`` / ``kary`` / ``twolevel`` — the topology-aware host
  algorithms of :mod:`repro.topo.algorithms` (selected by default when the
  network has a :class:`~repro.topo.Hierarchy`),

at N ∈ {64, ..., 1024} simulated processes (and, with per-node actor
coalescing, up to N=16384) and reports both the *simulated* mean GA_Sync
time and the *wall-clock* simulator throughput (events/sec) of each cell,
so the table doubles as a kernel perf probe.

Unlike the Figure 7 workload (every rank writes a strip into every remote
block — O(N²) puts per iteration, infeasible at N=1024), each rank here
issues one small put to its ring neighbor before synchronizing: the put
keeps the fence half of GA_Sync honest (there is always an outstanding
operation to complete) while the cost under study stays the barrier's
O(log N) exchange.

Coalesced cells (``ScaleBenchConfig.coalesce``) run one simulator actor
per *node* instead of per rank (see :mod:`repro.topo.coalesce`): the
intra-node phases of the two-level barrier are charged analytically and
the inter-node phases run for real among the node leaders.  This drops
simulated work from O(N) to O(N / ppn) actors and is what makes the
N=16384 point a CI smoke test rather than an overnight job.

Wall-clock numbers are machine-dependent; only the simulated µs column is
reproducible bit-for-bit.  This experiment is therefore *not* part of
``scripts/regenerate_results.py`` — it is reached via ``repro scalebench``
and the perf harness in ``benchmarks/perf/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from .common import default_params, format_table
from .parallel import run_cells

__all__ = [
    "ScaleBenchConfig",
    "ScaleBenchResult",
    "ScaleCell",
    "run_scalebench",
    "SCALE_VARIANTS",
    "HIER_SCALE_VARIANTS",
    "COALESCE_VARIANTS",
]

#: The default compared barrier implementations, in table-column order.
SCALE_VARIANTS: Tuple[str, ...] = ("host-exchange", "nic-exchange", "nic-tree")

#: Default variant set under a hierarchical topology: the flat host
#: exchange as the baseline plus the three topology-aware algorithms.
HIER_SCALE_VARIANTS: Tuple[str, ...] = (
    "host-exchange",
    "dissemination",
    "kary",
    "twolevel",
)

#: GA_Sync mode and parameter overrides per variant name.
_VARIANT_MODES: Dict[str, Tuple[str, Dict[str, object]]] = {
    "host-exchange": ("new", {}),
    "nic-exchange": ("nic", {"nic_algorithm": "exchange"}),
    "nic-tree": ("nic", {"nic_algorithm": "tree"}),
    "dissemination": ("dissemination", {}),
    "kary": ("kary", {}),
    "twolevel": ("twolevel", {}),
}

#: Inter-node (leaders') barrier algorithm used when a variant runs
#: coalesced.  ``twolevel`` coalesces to its own leaders' phase — the
#: recursive-doubling exchange; ``kary``/``dissemination`` keep their
#: algorithm among the leaders.  Variants absent here (the NIC offloads
#: and the flat all-rank exchange) have no per-node decomposition to
#: coalesce.
COALESCE_VARIANTS: Dict[str, str] = {
    "twolevel": "exchange",
    "kary": "kary",
    "dissemination": "dissemination",
}

#: Default process counts (matches the 1024-participant related work).
SCALE_NPROCS: Tuple[int, ...] = (64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class ScaleBenchConfig:
    """Workload parameters for the barrier scaling study."""

    nprocs_list: Tuple[int, ...] = SCALE_NPROCS
    #: Timed GA_Sync iterations per cell (kept small: one iteration at
    #: N=1024 is ~100k simulated events).
    iterations: int = 5
    #: Cells each rank puts to its ring neighbor before every sync.
    put_cells: int = 8
    procs_per_node: int = 1
    params: Optional[NetworkParams] = None
    #: Compared variants; ``None`` selects :data:`SCALE_VARIANTS`, or
    #: :data:`HIER_SCALE_VARIANTS` when ``params.hierarchy`` is set.
    variants: Optional[Tuple[str, ...]] = None
    #: Run one simulator actor per node instead of per rank (requires
    #: ``procs_per_node > 1``; only :data:`COALESCE_VARIANTS` members).
    coalesce: bool = False
    #: Soft wall-clock budget: cells run serially in ascending-N order
    #: and remaining cells are skipped (noted in the result) once the
    #: budget is exhausted.  ``None`` disables the budget.
    wall_budget_s: Optional[float] = None


@dataclass(frozen=True)
class ScaleCell:
    """Measured outcome of one (variant, nprocs) cell."""

    variant: str
    nprocs: int
    #: Mean GA_Sync time over all iterations and ranks (simulated µs).
    sync_us: float
    #: Simulated events processed by the cell's run.
    events: int
    #: Wall-clock seconds for the cell (machine-dependent).
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")


@dataclass
class ScaleBenchResult:
    """``cells[variant][nprocs] -> ScaleCell``."""

    title: str
    cells: Dict[str, Dict[int, ScaleCell]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Column order for :meth:`to_rows`; cells a variant is missing (for
    #: example skipped by the wall-clock budget) render as ``-``.
    variants: Tuple[str, ...] = SCALE_VARIANTS

    def record(self, cell: ScaleCell) -> None:
        self.cells.setdefault(cell.variant, {})[cell.nprocs] = cell

    def get(self, variant: str, nprocs: int) -> ScaleCell:
        return self.cells[variant][nprocs]

    def nprocs_list(self) -> List[int]:
        keys = set()
        for series in self.cells.values():
            keys.update(series)
        return sorted(keys)

    def total_events(self) -> int:
        return sum(
            c.events for series in self.cells.values() for c in series.values()
        )

    def total_wall_s(self) -> float:
        return sum(
            c.wall_s for series in self.cells.values() for c in series.values()
        )

    def to_rows(self) -> List[List[str]]:
        header = ["procs"]
        header += [f"{v} (us)" for v in self.variants]
        header += ["events", "kev/s"]
        rows = [header]
        for n in self.nprocs_list():
            row_cells = [self.cells.get(v, {}).get(n) for v in self.variants]
            present = [c for c in row_cells if c is not None]
            events = sum(c.events for c in present)
            wall = sum(c.wall_s for c in present)
            rows.append(
                [str(n)]
                + ["-" if c is None else f"{c.sync_us:.1f}" for c in row_cells]
                + [str(events), f"{events / wall / 1e3:.0f}" if wall else "-"]
            )
        return rows

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable summary (for ``repro scalebench --json-out``)."""
        return {
            "title": self.title,
            "variants": list(self.variants),
            "nprocs": self.nprocs_list(),
            "cells": [
                {
                    "variant": c.variant,
                    "nprocs": c.nprocs,
                    "sync_us": c.sync_us,
                    "events": c.events,
                    "wall_s": c.wall_s,
                }
                for v in self.variants
                for _, c in sorted(self.cells.get(v, {}).items())
            ],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [
            f"== {self.title} ==",
            "metric: mean GA_Sync time (simulated us) per variant; "
            "events + wall-clock kev/s per row (machine-dependent)",
        ]
        lines.append(format_table(self.to_rows()))
        total_wall = self.total_wall_s()
        if total_wall > 0:
            lines.append(
                f"total: {self.total_events()} events in {total_wall:.2f}s "
                f"wall ({self.total_events() / total_wall / 1e3:.0f} kev/s)"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def scale_workload(ctx, mode: str, cfg: ScaleBenchConfig):
    """Per-rank scaling program: small neighbor put, then timed GA_Sync."""
    from ..ga.sync import ga_sync

    right = (ctx.rank + 1) % ctx.nprocs
    addr = ctx.regions[right].alloc_named(
        "scalebench", max(cfg.put_cells, 1), initial=0.0
    )
    values = [float(ctx.rank)] * cfg.put_cells
    sw = ctx.stopwatch("ga_sync")
    for _iteration in range(cfg.iterations):
        if cfg.put_cells > 0:
            yield from ctx.armci.put_segments(right, [(addr, values)])
        sw.start()
        yield from ga_sync(ctx, mode)
        sw.stop()
    return sw.samples


def _scale_cell(cell) -> ScaleCell:
    """One (variant, nprocs) point (picklable sweep cell)."""
    cfg, variant, mode, params, nprocs = cell
    if cfg.coalesce:
        from ..topo.coalesce import coalesced_scale_workload

        ppn = cfg.procs_per_node
        nnodes = nprocs // ppn
        runtime = ClusterRuntime(nnodes, procs_per_node=1, params=params)
        start = time.perf_counter()
        per_rank = runtime.run_spmd(
            coalesced_scale_workload, COALESCE_VARIANTS[variant], cfg, ppn
        )
        wall_s = time.perf_counter() - start
    else:
        runtime = ClusterRuntime(
            nprocs, procs_per_node=cfg.procs_per_node, params=params
        )
        start = time.perf_counter()
        per_rank = runtime.run_spmd(scale_workload, mode, cfg)
        wall_s = time.perf_counter() - start
    pooled = [s for samples in per_rank for s in samples]
    return ScaleCell(
        variant=variant,
        nprocs=nprocs,
        sync_us=sum(pooled) / len(pooled),
        events=runtime.env.events_processed,
        wall_s=wall_s,
    )


def _resolve_variants(cfg: ScaleBenchConfig, base: NetworkParams) -> Tuple[str, ...]:
    if cfg.variants is not None:
        variants = tuple(cfg.variants)
    elif cfg.coalesce:
        variants = ("twolevel",)
    elif base.hierarchy is not None:
        variants = HIER_SCALE_VARIANTS
    else:
        variants = SCALE_VARIANTS
    for variant in variants:
        if variant not in _VARIANT_MODES:
            raise ValueError(
                f"unknown scalebench variant {variant!r}; "
                f"choose from {sorted(_VARIANT_MODES)}"
            )
        if cfg.coalesce and variant not in COALESCE_VARIANTS:
            raise ValueError(
                f"variant {variant!r} cannot run coalesced; "
                f"choose from {sorted(COALESCE_VARIANTS)}"
            )
    return variants


def run_scalebench(
    cfg: ScaleBenchConfig = ScaleBenchConfig(), jobs: int = 1
) -> ScaleBenchResult:
    """Run the barrier scaling study over all variants and process counts."""
    base = default_params(cfg.params)
    variants = _resolve_variants(cfg, base)
    if cfg.coalesce:
        if cfg.procs_per_node < 2:
            raise ValueError("coalesce requires procs_per_node > 1")
        for nprocs in cfg.nprocs_list:
            if nprocs % cfg.procs_per_node:
                raise ValueError(
                    f"coalesce requires nprocs divisible by procs_per_node "
                    f"(got N={nprocs}, ppn={cfg.procs_per_node})"
                )
    title = "Barrier scaling: GA_Sync() time, host vs NIC, N up to 1024"
    if base.hierarchy is not None:
        title = (
            "Barrier scaling: GA_Sync() time under hierarchical topology "
            f"[{base.hierarchy.label()}]"
        )
    if cfg.coalesce:
        title += " (per-node coalesced)"
    result = ScaleBenchResult(title=title, variants=variants)
    plans = [
        (variant, mode, base.with_(**overrides) if overrides else base)
        for variant, (mode, overrides) in (
            (v, _VARIANT_MODES[v]) for v in variants
        )
    ]
    # Ascending-N row-major order so a wall-clock budget completes whole
    # rows (all variants at a given N) before moving to the next N.
    cells = [
        (cfg, variant, mode, params, nprocs)
        for nprocs in cfg.nprocs_list
        for variant, mode, params in plans
    ]
    if cfg.wall_budget_s is not None:
        deadline = time.perf_counter() + cfg.wall_budget_s
        skipped: List[Tuple[str, int]] = []
        for cell in cells:
            if time.perf_counter() >= deadline:
                skipped.append((cell[1], cell[4]))
                continue
            result.record(_scale_cell(cell))
        if skipped:
            result.notes.append(
                f"wall budget {cfg.wall_budget_s:.0f}s exhausted; skipped "
                + ", ".join(f"{v}@N={n}" for v, n in skipped)
            )
    else:
        for measured in run_cells(_scale_cell, cells, jobs=jobs):
            result.record(measured)
    result.notes.append(
        f"workload: {cfg.put_cells}-cell put to the ring neighbor, then "
        f"GA_Sync, x{cfg.iterations} iterations per cell"
    )
    if cfg.coalesce:
        result.notes.append(
            f"coalesced: one actor per node (ppn={cfg.procs_per_node}); "
            "intra-node phases charged analytically, inter-node phases "
            "simulated (see repro.topo.coalesce)"
        )
    result.notes.append(
        "simulated us columns are deterministic; events/sec is wall-clock "
        "and varies by machine (see docs/performance.md)"
    )
    return result
