"""Result export: CSV series for plotting the paper's figures.

Each figure's data can be dumped as tidy CSV (one row per
(implementation, nprocs) point) so the curves of Figures 7-10 can be
plotted with any tool.  The CLI exposes this via ``--csv DIR``.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, Optional, Union

from .common import Comparison
from .lockbench import LockPoint
from .nicbench import NicBenchResult
from .scalebench import ScaleBenchResult

__all__ = [
    "comparison_to_csv",
    "lock_series_to_csv",
    "nicbench_to_csv",
    "scalebench_to_csv",
    "write_csv",
]


def comparison_to_csv(comparison: Comparison) -> str:
    """Tidy CSV for a two-series comparison: variant,nprocs,us + factor rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["variant", "nprocs", "microseconds"])
    for variant, series in comparison.values.items():
        for nprocs in sorted(series):
            writer.writerow([variant, nprocs, f"{series[nprocs]:.3f}"])
    for nprocs in comparison.nprocs_list():
        writer.writerow(["factor", nprocs, f"{comparison.factor(nprocs):.4f}"])
    return buffer.getvalue()


def lock_series_to_csv(series: Dict[str, Dict[int, LockPoint]]) -> str:
    """Tidy CSV for a lock benchmark: kind,nprocs,acquire,release,roundtrip."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["kind", "nprocs", "acquire_us", "release_us", "roundtrip_us"]
    )
    for kind, points in series.items():
        for nprocs in sorted(points):
            point = points[nprocs]
            writer.writerow(
                [
                    kind,
                    nprocs,
                    f"{point.acquire_us:.3f}",
                    f"{point.release_us:.3f}",
                    f"{point.roundtrip_us:.3f}",
                ]
            )
    return buffer.getvalue()


def nicbench_to_csv(result: NicBenchResult) -> str:
    """Tidy CSV for the NIC ablation: variant,nprocs,us + factor rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["variant", "nprocs", "microseconds"])
    for variant, series in result.values.items():
        for nprocs in sorted(series):
            writer.writerow([variant, nprocs, f"{series[nprocs]:.3f}"])
    for nprocs in result.nprocs_list():
        writer.writerow(["factor", nprocs, f"{result.factor(nprocs):.4f}"])
    return buffer.getvalue()


def scalebench_to_csv(result: ScaleBenchResult) -> str:
    """Tidy CSV for the scaling study: one row per (variant, nprocs) cell.

    ``events``/``wall_s`` are machine-dependent; ``sync_us`` is the
    deterministic simulated mean.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["variant", "nprocs", "sync_us", "events", "wall_s"])
    for variant in result.variants:
        for nprocs, cell in sorted(result.cells.get(variant, {}).items()):
            writer.writerow(
                [
                    variant,
                    nprocs,
                    f"{cell.sync_us:.3f}",
                    cell.events,
                    f"{cell.wall_s:.4f}",
                ]
            )
    return buffer.getvalue()


def write_csv(
    content: str, directory: Union[str, pathlib.Path], name: str
) -> pathlib.Path:
    """Write CSV ``content`` to ``directory/name.csv``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.csv"
    path.write_text(content)
    return path
