"""Fault ablation: synchronization cost and retry volume vs. drop rate.

The paper's numbers assume GM's perfectly reliable, in-order network.  This
experiment measures what reliability *costs* when the network misbehaves: a
put/acc/barrier assembly epoch is run under increasing link drop rates with
the ACK/retransmit/resequencing layer enabled, and we report

* the mean epoch time (how much the retransmission machinery stretches the
  paper's optimized synchronization),
* the transport's work (retransmits, timeouts, suppressed duplicates,
  ACK frames), and
* a built-in correctness check: the final memory state and per-rank
  ``op_done`` counters must be identical to the fault-free run — the
  reliability layer's whole job is to make faults invisible to the
  protocols above it.

The workload writes rank-disjoint slots (puts) and commutative accumulates,
so the correct final state is interleaving-independent; any divergence is a
genuine delivery bug (lost, duplicated, or double-applied operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..net.faults import FaultPlan
from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from ..runtime.memory import GlobalAddress
from .common import default_params, format_table

__all__ = [
    "FaultBenchConfig",
    "FaultPoint",
    "FaultBenchResult",
    "fault_workload",
    "run_fault_point",
    "run_faultbench",
]


@dataclass(frozen=True)
class FaultBenchConfig:
    """Sweep configuration."""

    nprocs: int = 16
    procs_per_node: int = 1
    drop_rates: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.05, 0.1)
    #: Duplicate-injection rate as a fraction of the drop rate (networks
    #: that lose packets usually also replay them).
    dup_fraction: float = 0.5
    epochs: int = 4
    puts_per_peer: int = 2
    cells: int = 8
    fault_seed: int = 20030422
    retry_timeout_us: Optional[float] = None
    params: Optional[NetworkParams] = None


@dataclass
class FaultPoint:
    """One row of the sweep."""

    drop_rate: float
    epoch_us: float
    retransmits: int
    timeouts: int
    dup_suppressed: int
    acks: int
    frames_dropped: int
    frames_duplicated: int
    state_ok: bool


@dataclass
class FaultBenchResult:
    title: str
    points: List[FaultPoint] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_rows(self) -> List[List[str]]:
        rows = [
            [
                "drop",
                "epoch (us)",
                "slowdown",
                "retx",
                "timeouts",
                "dups supp.",
                "acks",
                "lost",
                "state",
            ]
        ]
        base = self.points[0].epoch_us if self.points else 1.0
        for p in self.points:
            rows.append(
                [
                    f"{p.drop_rate:.2f}",
                    f"{p.epoch_us:.1f}",
                    f"{p.epoch_us / base:.2f}x",
                    str(p.retransmits),
                    str(p.timeouts),
                    str(p.dup_suppressed),
                    str(p.acks),
                    str(p.frames_dropped),
                    "ok" if p.state_ok else "DIVERGED",
                ]
            )
        return rows

    def render(self) -> str:
        lines = [f"== {self.title} ==", format_table(self.to_rows())]
        lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)

    def all_ok(self) -> bool:
        return all(p.state_ok for p in self.points)


def fault_workload(ctx, cfg: FaultBenchConfig):
    """Assembly epochs: disjoint puts + commutative accs + combined barrier.

    Returns ``(mean_epoch_us, final_state)`` where ``final_state`` is the
    (put slots, acc cell, op_done) triple used for cross-run comparison.
    """
    slot_cells = cfg.cells
    base = ctx.region.alloc_named("faultbench.slots", ctx.nprocs * slot_cells, initial=0)
    acc_addr = ctx.region.alloc_named("faultbench.acc", 1, initial=0)
    stopwatch = ctx.stopwatch("epoch")
    for epoch in range(cfg.epochs):
        stopwatch.start()
        payload_seed = epoch * ctx.nprocs + ctx.rank + 1
        for peer in range(ctx.nprocs):
            if peer == ctx.rank:
                continue
            slot = base + ctx.rank * slot_cells
            for i in range(cfg.puts_per_peer):
                values = [payload_seed * 10 + i] * slot_cells
                yield from ctx.armci.put(GlobalAddress(peer, slot), values)
            yield from ctx.armci.acc(GlobalAddress(peer, acc_addr), [payload_seed])
        yield from ctx.armci.barrier()
        stopwatch.stop()
    final_state = (
        tuple(ctx.region.read_many(base, ctx.nprocs * slot_cells)),
        ctx.region.read(acc_addr),
        ctx.armci.server.op_done(ctx.rank),
    )
    return stopwatch.mean(), final_state


def _make_params(cfg: FaultBenchConfig, drop_rate: float) -> NetworkParams:
    params = default_params(cfg.params)
    overrides: Dict[str, Any] = {}
    if cfg.retry_timeout_us is not None:
        overrides["retry_timeout_us"] = cfg.retry_timeout_us
    if drop_rate > 0.0:
        overrides["faults"] = FaultPlan.uniform(
            drop_rate=drop_rate,
            dup_rate=drop_rate * cfg.dup_fraction,
            seed=cfg.fault_seed,
        )
    return params.with_(**overrides) if overrides else params


def run_fault_point(cfg: FaultBenchConfig, drop_rate: float):
    """Run one drop-rate point; returns (mean epoch us, states, runtime)."""
    runtime = ClusterRuntime(
        cfg.nprocs,
        procs_per_node=cfg.procs_per_node,
        params=_make_params(cfg, drop_rate),
    )
    per_rank = runtime.run_spmd(fault_workload, cfg)
    epochs = [us for us, _state in per_rank]
    states = [state for _us, state in per_rank]
    return sum(epochs) / len(epochs), states, runtime


def run_faultbench(cfg: Optional[FaultBenchConfig] = None) -> FaultBenchResult:
    cfg = cfg or FaultBenchConfig()
    rates = list(cfg.drop_rates)
    if not rates or rates[0] != 0.0:
        rates.insert(0, 0.0)  # the fault-free reference always runs first
    result = FaultBenchResult(
        title=(
            f"Fault ablation: {cfg.nprocs}-process put/acc/barrier epoch vs "
            "link drop rate (reliable delivery on)"
        )
    )
    baseline_states: Optional[List[Any]] = None
    for rate in rates:
        epoch_us, states, runtime = run_fault_point(cfg, rate)
        if baseline_states is None:
            baseline_states = states
        stats = runtime.fabric.stats
        injector = runtime.fabric.faults
        result.points.append(
            FaultPoint(
                drop_rate=rate,
                epoch_us=epoch_us,
                retransmits=stats.retransmits,
                timeouts=stats.timeouts,
                dup_suppressed=stats.dup_suppressed,
                acks=stats.acks,
                frames_dropped=injector.stats.dropped if injector else 0,
                frames_duplicated=injector.stats.duplicated if injector else 0,
                state_ok=(states == baseline_states),
            )
        )
    result.notes.append(
        f"workload: {cfg.epochs} epochs x {cfg.puts_per_peer} puts/peer "
        f"({cfg.cells} cells) + 1 acc/peer + ARMCI_Barrier; "
        f"retry_timeout={_make_params(cfg, 0.0).retry_timeout_us}us, "
        f"fault seed {cfg.fault_seed}"
    )
    result.notes.append(
        "state column compares final memory and op_done against the "
        "fault-free run (must be ok at every drop rate)"
    )
    return result
