"""Figure 9: time to request and acquire the lock.

Paper's observation: the new implementation always outperforms the current
one here, because the lock is passed to the next waiter with one message
(or zero intra-node) instead of two server-mediated messages.
"""

from __future__ import annotations

from .common import Comparison
from .lockbench import LockBenchConfig, comparison_from_series, run_lock_series

__all__ = ["run_fig9"]


def run_fig9(cfg: LockBenchConfig = LockBenchConfig()) -> Comparison:
    series = run_lock_series(cfg)
    return comparison_from_series(
        series,
        metric="acquire",
        title="Figure 9: time to request and acquire a lock (current vs new)",
    )
