"""Experiment harness: one module per paper figure, plus ablations."""

from .chaosbench import ChaosBenchConfig, ChaosBenchResult, run_chaosbench
from .common import Comparison, format_table
from .faultbench import FaultBenchConfig, run_faultbench
from .fig7_sync import Fig7Config, run_fig7
from .fig8_lock_total import run_fig8
from .fig9_lock_acquire import run_fig9
from .fig10_lock_release import run_fig10
from .lockbench import LockBenchConfig, LockPoint, run_lock_point, run_lock_series
from .nicbench import NicBenchConfig, NicBenchResult, run_nicbench
from .parallel import cell_seed, default_jobs, run_cells
from .scalebench import ScaleBenchConfig, ScaleBenchResult, run_scalebench

__all__ = [
    "ChaosBenchConfig",
    "ChaosBenchResult",
    "Comparison",
    "FaultBenchConfig",
    "Fig7Config",
    "LockBenchConfig",
    "LockPoint",
    "NicBenchConfig",
    "NicBenchResult",
    "ScaleBenchConfig",
    "ScaleBenchResult",
    "cell_seed",
    "default_jobs",
    "format_table",
    "run_chaosbench",
    "run_faultbench",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_cells",
    "run_lock_point",
    "run_lock_series",
    "run_nicbench",
    "run_scalebench",
]
