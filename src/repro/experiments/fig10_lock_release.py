"""Figure 10: time to release the lock.

Paper's observation: the new implementation's release is *slower* — an
uncontended release performs a blocking compare&swap (a round trip to the
lock's home server) where the original merely initiates an unlock message.
As contention grows, the chance of an empty queue shrinks, so the new
implementation's average release time falls toward the cheap handoff path,
while the original stays flat (it always just sends one message).
"""

from __future__ import annotations

from .common import Comparison
from .lockbench import LockBenchConfig, comparison_from_series, run_lock_series

__all__ = ["run_fig10"]


def run_fig10(cfg: LockBenchConfig = LockBenchConfig()) -> Comparison:
    series = run_lock_series(cfg)
    comparison = comparison_from_series(
        series,
        metric="release",
        title="Figure 10: time to release a lock (current vs new)",
    )
    comparison.notes.append(
        "here the *current* implementation is expected to be cheaper "
        "(factor < 1): the paper reports the same regression"
    )
    return comparison
