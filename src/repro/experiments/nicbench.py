"""NIC ablation: host binary exchange vs. NIC-offloaded barrier.

Three-way comparison of the combined fence+barrier implementations over
the process counts of the paper's Figure 7 workload:

* ``host-exchange`` — the paper's 3-stage binary exchange run by the host
  processes (GA_Sync mode ``new``),
* ``nic-exchange`` — the NIC co-processors run all three stages with the
  recursive-doubling exchange (``nic_algorithm="exchange"``),
* ``nic-tree`` — same, with the combining-tree variant
  (``nic_algorithm="tree"``).

The host posts a single doorbell and sleeps; stage 2 is satisfied against
the NIC-resident ``op_done`` mirror, so no host is involved between the
doorbell and the completion write-back.  The NIC wins once the saved
per-phase host overhead (two ``mp_call_us`` + send/recv ``o_*`` beats)
exceeds the doorbell + DMA cost of shipping the ``op_init`` row down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from .common import DEFAULT_NPROCS, default_params, format_table
from .fig7_sync import Fig7Config, sync_workload
from .parallel import run_cells

__all__ = ["NicBenchConfig", "NicBenchResult", "run_nicbench", "VARIANTS"]

#: The three compared implementations, in table-column order.
VARIANTS: Tuple[str, ...] = ("host-exchange", "nic-exchange", "nic-tree")


@dataclass(frozen=True)
class NicBenchConfig:
    """Workload parameters for the NIC ablation (Figure 7 workload)."""

    nprocs_list: Tuple[int, ...] = DEFAULT_NPROCS
    iterations: int = 100
    shape: Tuple[int, int] = (256, 256)
    strip_rows: int = 4
    procs_per_node: int = 1
    params: Optional[NetworkParams] = None


@dataclass
class NicBenchResult:
    """``values[variant][nprocs] -> mean GA_Sync time (us)``."""

    title: str
    metric: str
    values: Dict[str, Dict[int, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def record(self, variant: str, nprocs: int, value_us: float) -> None:
        self.values.setdefault(variant, {})[nprocs] = value_us

    def nprocs_list(self) -> List[int]:
        keys = set()
        for series in self.values.values():
            keys.update(series)
        return sorted(keys)

    def get(self, variant: str, nprocs: int) -> float:
        return self.values[variant][nprocs]

    def best(self, nprocs: int) -> str:
        """Winning variant at ``nprocs`` (deterministic tie-break)."""
        return min(VARIANTS, key=lambda v: (self.get(v, nprocs), v))

    def factor(self, nprocs: int) -> float:
        """host-exchange / best NIC variant (>1 means offload wins)."""
        nic_best = min(
            self.get("nic-exchange", nprocs), self.get("nic-tree", nprocs)
        )
        return self.get("host-exchange", nprocs) / nic_best

    def to_rows(self) -> List[List[str]]:
        header = ["procs"] + [f"{v} (us)" for v in VARIANTS]
        header += ["best", "factor"]
        rows = [header]
        for n in self.nprocs_list():
            rows.append(
                [str(n)]
                + [f"{self.get(v, n):.1f}" for v in VARIANTS]
                + [self.best(n), f"{self.factor(n):.2f}"]
            )
        return rows

    def render(self) -> str:
        lines = [f"== {self.title} ==", f"metric: {self.metric}"]
        lines.append(format_table(self.to_rows()))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _mean_sync_us(
    cfg: NicBenchConfig, nprocs: int, mode: str, params: NetworkParams
) -> float:
    fig7_cfg = Fig7Config(
        nprocs_list=(nprocs,),
        iterations=cfg.iterations,
        shape=cfg.shape,
        strip_rows=cfg.strip_rows,
        procs_per_node=cfg.procs_per_node,
        params=params,
    )
    runtime = ClusterRuntime(
        nprocs, procs_per_node=cfg.procs_per_node, params=params
    )
    per_rank = runtime.run_spmd(sync_workload, mode, fig7_cfg)
    pooled = [s for samples in per_rank for s in samples]
    return sum(pooled) / len(pooled)


def _nic_cell(cell) -> float:
    """One (variant, nprocs) point (picklable sweep cell)."""
    cfg, nprocs, mode, params = cell
    return _mean_sync_us(cfg, nprocs, mode, params)


def run_nicbench(
    cfg: NicBenchConfig = NicBenchConfig(), jobs: int = 1
) -> NicBenchResult:
    """Run the three-way host vs. NIC barrier comparison.

    ``jobs > 1`` shards the (variant, nprocs) cells over worker processes;
    results are identical to a serial run (each cell is an independent
    simulation — see :mod:`repro.experiments.parallel`).
    """
    result = NicBenchResult(
        title="NIC ablation: GA_Sync() time (host vs NIC offload)",
        metric="mean GA_Sync time over all iterations and processes (us)",
    )
    base = default_params(cfg.params)
    plans = (
        ("host-exchange", "new", base),
        ("nic-exchange", "nic", base.with_(nic_algorithm="exchange")),
        ("nic-tree", "nic", base.with_(nic_algorithm="tree")),
    )
    cells = [
        (cfg, nprocs, mode, params)
        for _variant, mode, params in plans
        for nprocs in cfg.nprocs_list
    ]
    means = run_cells(_nic_cell, cells, jobs=jobs)
    flat = iter(means)
    for variant, _mode, _params in plans:
        for nprocs in cfg.nprocs_list:
            result.record(variant, nprocs, next(flat))
    result.notes.append(
        f"workload: {cfg.shape} array, {cfg.strip_rows}-row strips to every "
        f"remote block, {cfg.iterations} iterations"
    )
    result.notes.append(
        "nic variants: host posts one doorbell (op_init row DMA'd to the "
        "NIC); stage 2 satisfied against the NIC-resident op_done mirror"
    )
    return result
