"""Chaos benchmark: crash-stop failures under the paper's synchronization.

The paper's protocols assume every participant stays up.  This experiment
injects seeded :class:`~repro.net.faults.ProcessCrash` events at the worst
moments — a rank dies *inside* the combined barrier's binary exchange, a
lock holder dies *inside* its critical section — and measures what the
crash-stop machinery (:mod:`repro.runtime.membership`) delivers:

* **detection latency** — kill time to the declaration that bumps the
  membership epoch,
* **lock-recovery latency** — declaration to the moment the revoked lease's
  queue is spliced and the next waiter holds the lock,
* **survivor correctness** — every survivor's barrier completes with every
  *live* peer's puts applied; mutual exclusion and (for FIFO algorithms)
  grant order among survivors are preserved across the recovery.

The workload runs two phases over one shared lock:

1. **Barrier phase.**  Every rank puts a known value into every peer's
   region, then enters ``ARMCI_Barrier()``.  Barrier victims enter
   immediately and are killed mid-exchange; everyone else holds back until
   ``barrier_hold_us`` (after the kills, before the declarations) so the
   survivors demonstrably *restart* the exchange on the view change.

2. **Lock phase.**  Lock victims acquire first and "compute" until their
   kill fires mid-critical-section; survivors then contend for
   ``lock_iters`` acquire/compute/release rounds each.  A shared
   observation dict records request order, grant order, and the
   critical-section owner cell — a survivor that is granted the lock while
   the cell still names a dead rank has *evidence* the holder died inside
   its CS and the lease was revoked (recorded as a preemption, not a
   violation).

Everything is deterministic: the same ``kill_seed`` yields the same
detection times, recovery actions, and grant order on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..locks import make_lock
from ..net.faults import FaultPlan, Partition, ProcessCrash, ProcessStall
from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from ..runtime.memory import GlobalAddress
from ..sim.core import CRASHED
from .common import default_params, format_table

__all__ = [
    "ChaosBenchConfig",
    "ChaosBenchResult",
    "chaos_workload",
    "run_chaosbench",
    "FIFO_KINDS",
]

#: Lock algorithms whose grant order is FIFO in request-arrival order (the
#: token algorithms serve in tree/forwarding order instead).
FIFO_KINDS = ("ticket", "lh", "server", "hybrid", "mcs")

#: Lock algorithms that require every rank on the lock's home node.
_LOCAL_KINDS = ("ticket", "lh")


@dataclass(frozen=True)
class ChaosBenchConfig:
    """One chaos scenario: who dies, when, and around which protocol."""

    nprocs: int = 8
    procs_per_node: int = 1
    lock_kind: str = "hybrid"
    lock_home: int = 0
    #: ``(rank, at_us)`` kills fired while the rank is inside the combined
    #: barrier's exchange (all ``at_us`` must precede ``barrier_hold_us``).
    barrier_kills: Tuple[Tuple[int, float], ...] = ((5, 60.0),)
    #: ``(rank, at_us)`` kills fired while the rank holds the lock (all
    #: ``at_us`` must follow ``barrier_hold_us``).
    lock_kills: Tuple[Tuple[int, float], ...] = ((6, 900.0),)
    #: Absolute sim time before which no non-victim enters the phase-1
    #: barrier: late enough that the victims are already dead inside the
    #: exchange, early enough that they are not yet *declared* dead — so
    #: survivors provably restart the exchange on the view change.
    barrier_hold_us: float = 150.0
    #: Spacing between consecutive lock requests.  Must exceed the
    #: local/remote transit asymmetry (a local requester reaches the home
    #: ticket counter in ~2us, a remote one in ~30us) so that request-send
    #: order equals queue-arrival order and the FIFO check is meaningful.
    lock_stagger_us: float = 40.0
    lock_iters: int = 3
    cs_us: float = 5.0
    cells: int = 4
    kill_seed: int = 20030422
    #: Partition windows ``(nodes, from_us, until_us)``: the node group is
    #: cut off for the window, its ranks freeze (quorum loss) and rejoin
    #: with a state resync at the heal.  Node 0 (the lock home) must stay
    #: on the majority side.
    partitions: Tuple[Tuple[Tuple[int, ...], float, float], ...] = ()
    #: Transient stalls ``(rank, from_us, until_us)``: the rank pauses and
    #: resumes (no crash).
    stalls: Tuple[Tuple[int, float, float], ...] = ()
    params: Optional[NetworkParams] = None

    def victims(self) -> Tuple[int, ...]:
        return tuple(r for r, _t in self.barrier_kills) + tuple(
            r for r, _t in self.lock_kills
        )


@dataclass
class ChaosBenchResult:
    """Everything the scenario measured, plus pass/fail checks."""

    config: ChaosBenchConfig
    survivors: Tuple[int, ...] = ()
    dead: Tuple[int, ...] = ()
    final_epoch: int = 0
    detections: List[Dict[str, Any]] = field(default_factory=list)
    recoveries: List[Dict[str, Any]] = field(default_factory=list)
    preemptions: List[Dict[str, Any]] = field(default_factory=list)
    #: Partition-mode telemetry (empty under crash-only configs).
    freezes: List[Dict[str, Any]] = field(default_factory=list)
    heals: List[Dict[str, Any]] = field(default_factory=list)
    rejoins: List[Dict[str, Any]] = field(default_factory=list)
    survivor_grants: List[Tuple[int, int]] = field(default_factory=list)
    checks: Dict[str, Optional[bool]] = field(default_factory=dict)
    finished_us: float = 0.0

    def all_ok(self) -> bool:
        return all(v is not False for v in self.checks.values())

    def render(self) -> str:
        cfg = self.config
        lines = [
            f"== Chaos: crash-stop failures over {cfg.nprocs} procs, "
            f"{cfg.lock_kind} lock (kill seed {cfg.kill_seed}) ==",
            f"survivors: {list(self.survivors)}   dead: {list(self.dead)}   "
            f"final epoch: {self.final_epoch}   "
            f"finished at {self.finished_us:.1f}us",
        ]
        rows = [["rank", "killed (us)", "declared (us)", "detect latency (us)"]]
        for d in self.detections:
            rows.append(
                [
                    str(d["rank"]),
                    f"{d['crashed_at_us']:.1f}",
                    f"{d['declared_at_us']:.1f}",
                    f"{d['detect_latency_us']:.1f}",
                ]
            )
        lines.append(format_table(rows))
        if self.recoveries:
            rows = [["lock", "kind", "dead", "declared (us)", "recovery (us)"]]
            for r in self.recoveries:
                recovered = r.get("recovery_latency_us")
                rows.append(
                    [
                        r["lock"],
                        r["kind"],
                        str(r["dead_rank"]),
                        f"{r['declared_at_us']:.1f}",
                        "-" if recovered is None else f"{recovered:.1f}",
                    ]
                )
            lines.append(format_table(rows))
        for p in self.preemptions:
            lines.append(
                f"preemption: rank {p['dead_holder']} died in its CS; lease "
                f"revoked, lock granted to rank {p['granted_to']} "
                f"at {p['at_us']:.1f}us"
            )
        if self.freezes:
            rows = [["rank", "frozen (us)", "thawed (us)", "freeze duration (us)"]]
            for f in self.freezes:
                rows.append(
                    [
                        str(f["rank"]),
                        f"{f['frozen_at_us']:.1f}",
                        f"{f['unfrozen_at_us']:.1f}",
                        f"{f['frozen_for_us']:.1f}",
                    ]
                )
            lines.append(format_table(rows))
        for h in self.heals:
            # Heal latency: cut restored -> last frozen rank back in
            # business (quorum regained, rejoin resync applied, thawed).
            thaws = [
                f["unfrozen_at_us"]
                for f in self.freezes
                if f["unfrozen_at_us"] >= h["healed_at_us"]
            ]
            latency = (max(thaws) - h["healed_at_us"]) if thaws else 0.0
            lines.append(
                f"heal: cut {h['nodes']} from {h['from_us']:.1f}us healed at "
                f"{h['healed_at_us']:.1f}us, rejoined ranks {h['rejoined']} "
                f"-> epoch {h['epoch']} (heal latency {latency:.1f}us)"
            )
        for r in self.rejoins:
            lines.append(
                f"rejoin: rank {r['rank']} resynced into the view at "
                f"{r['rejoined_at_us']:.1f}us"
            )
        for name, ok in sorted(self.checks.items()):
            status = "skipped" if ok is None else ("ok" if ok else "FAILED")
            lines.append(f"check {name}: {status}")
        lines.append(
            "ALL CHECKS PASSED" if self.all_ok() else "SOME CHECKS FAILED"
        )
        return "\n".join(lines)


def chaos_workload(ctx, cfg: ChaosBenchConfig, shared: Dict[str, Any]):
    """Per-rank program: barrier phase, then lock phase (see module doc)."""
    env = ctx.env
    membership = ctx.membership
    barrier_victims = {r for r, _t in cfg.barrier_kills}
    lock_victim_order = [r for r, _t in cfg.lock_kills]
    lock_victims = set(lock_victim_order)
    # The slot array must be the FIRST allocation so `base` is identical in
    # every region (lock construction allocates home-side cells and would
    # skew the home rank's offsets).
    slot_cells = cfg.cells
    base = ctx.region.alloc_named("chaos.slots", ctx.nprocs * slot_cells, initial=0)
    # Every rank constructs its handle up front so recovery can inspect the
    # dead ranks' lock state (registered with the membership service).
    lock = make_lock(cfg.lock_kind, ctx, home_rank=cfg.lock_home, name="chaos")

    # -- Phase 1: puts + combined barrier with mid-exchange kills ---------
    for peer in range(ctx.nprocs):
        if peer == ctx.rank:
            continue
        values = [100 * (ctx.rank + 1)] * slot_cells
        yield from ctx.armci.put(
            GlobalAddress(peer, base + ctx.rank * slot_cells), values
        )
    if ctx.rank not in barrier_victims and env.now < cfg.barrier_hold_us:
        # Hold back so the barrier victims are blocked inside the exchange
        # when their kills fire (a completed barrier can't be disrupted).
        yield env.timeout(cfg.barrier_hold_us - env.now)
    yield from ctx.armci.barrier()
    barrier_done_us = env.now

    # Survivor memory check: every live peer's puts must be applied; a dead
    # peer's slot holds either its full value or nothing (puts are atomic).
    slots_ok = True
    dead_slots_ok = True
    for peer in range(ctx.nprocs):
        if peer == ctx.rank:
            continue
        cells = ctx.region.read_many(base + peer * slot_cells, slot_cells)
        want = 100 * (peer + 1)
        if membership is None or (
            membership.is_alive(peer) and membership.in_view(peer)
        ):
            slots_ok = slots_ok and all(v == want for v in cells)
        else:
            dead_slots_ok = dead_slots_ok and (
                all(v == want for v in cells) or all(v == 0 for v in cells)
            )

    # -- Phase 2: lock contention with mid-CS kills -----------------------
    def note_grant(it: int):
        prev = shared["cs_owner"]
        if prev is not None:
            if membership is not None and not membership.in_view(prev):
                # The previous holder is on the minority side of an active
                # partition; its lease was revoked and fenced.
                shared["preemptions"].append(
                    {"at_us": env.now, "dead_holder": prev, "granted_to": ctx.rank}
                )
            elif prev in lock_victims:
                # The previous holder died inside its critical section and
                # recovery revoked the lease — expected, and evidence the
                # grant really was preempted from a dead holder.
                shared["preemptions"].append(
                    {"at_us": env.now, "dead_holder": prev, "granted_to": ctx.rank}
                )
            else:
                shared["mutex_ok"] = False
        shared["cs_owner"] = ctx.rank
        shared["grants"].append((env.now, ctx.rank, it))

    if ctx.rank in lock_victims:
        idx = lock_victim_order.index(ctx.rank)
        if idx:
            yield env.timeout(cfg.lock_stagger_us * idx)
        shared["requests"].append((env.now, ctx.rank, -1))
        yield from lock.acquire()
        note_grant(-1)
        while True:  # "compute" in the CS until the scheduled kill fires
            yield env.timeout(cfg.cs_us)

    yield env.timeout(cfg.lock_stagger_us * (len(lock_victim_order) + 1 + ctx.rank))
    for it in range(cfg.lock_iters):
        shared["requests"].append((env.now, ctx.rank, it))
        yield from lock.acquire()
        note_grant(it)
        yield env.timeout(cfg.cs_us)
        if shared["cs_owner"] == ctx.rank:
            shared["cs_owner"] = None
        elif membership is None or membership.in_view(ctx.rank):
            # A fenced (out-of-view) holder's stale CS exit is quarantined
            # by design; anything else is a mutual-exclusion breach.
            shared["mutex_ok"] = False  # someone entered our CS
            shared["cs_owner"] = None
        yield from lock.release()

    # -- Final combined barrier over the survivor view --------------------
    yield from ctx.armci.barrier()
    return {
        "rank": ctx.rank,
        "barrier_done_us": barrier_done_us,
        "slots_ok": slots_ok,
        "dead_slots_ok": dead_slots_ok,
        "finished_us": env.now,
    }


def _make_params(cfg: ChaosBenchConfig) -> NetworkParams:
    params = default_params(cfg.params)
    crashes = tuple(
        ProcessCrash(at_us=at_us, rank=rank)
        for rank, at_us in tuple(cfg.barrier_kills) + tuple(cfg.lock_kills)
    )
    partitions = tuple(
        Partition(nodes=tuple(nodes), from_us=f, until_us=u)
        for nodes, f, u in cfg.partitions
    )
    pauses = tuple(
        ProcessStall(rank=r, from_us=f, until_us=u) for r, f, u in cfg.stalls
    )
    return params.with_(
        faults=FaultPlan(
            crashes=crashes,
            partitions=partitions,
            pauses=pauses,
            seed=cfg.kill_seed,
        )
    )


def _validate(cfg: ChaosBenchConfig) -> None:
    victims = cfg.victims()
    if len(set(victims)) != len(victims):
        raise ValueError(f"victim ranks must be distinct, got {victims}")
    for rank in victims:
        if not (0 <= rank < cfg.nprocs):
            raise ValueError(f"victim rank {rank} out of range 0..{cfg.nprocs - 1}")
    if len(victims) >= cfg.nprocs - 1:
        raise ValueError("need at least two survivors")
    for _rank, at_us in cfg.barrier_kills:
        if at_us >= cfg.barrier_hold_us:
            raise ValueError(
                f"barrier kill at {at_us}us must precede "
                f"barrier_hold_us={cfg.barrier_hold_us}us"
            )
    for _rank, at_us in cfg.lock_kills:
        if at_us <= cfg.barrier_hold_us:
            raise ValueError(
                f"lock kill at {at_us}us must follow "
                f"barrier_hold_us={cfg.barrier_hold_us}us"
            )
    if cfg.partitions:
        procs_per_node = (
            cfg.nprocs if cfg.lock_kind in _LOCAL_KINDS else cfg.procs_per_node
        )
        nnodes = cfg.nprocs // procs_per_node
        for nodes, from_us, until_us in cfg.partitions:
            if until_us <= from_us:
                raise ValueError(
                    f"partition window [{from_us}, {until_us}) is empty"
                )
            if 0 in nodes:
                raise ValueError(
                    "node 0 (the lock home) must stay on the majority side"
                )
            if any(not (0 < n < nnodes) for n in nodes):
                raise ValueError(
                    f"partition nodes {nodes} out of range 1..{nnodes - 1}"
                )
            if 2 * len(set(nodes)) >= nnodes:
                raise ValueError(
                    f"cut {nodes} leaves no strict node majority "
                    f"({nnodes} nodes total)"
                )
    for rank, from_us, until_us in cfg.stalls:
        if not (0 < rank < cfg.nprocs):
            raise ValueError(f"stall rank {rank} out of range 1..{cfg.nprocs - 1}")
        if until_us <= from_us:
            raise ValueError(f"stall window [{from_us}, {until_us}) is empty")


def run_chaosbench(
    cfg: Optional[ChaosBenchConfig] = None, monitor=None
) -> ChaosBenchResult:
    """Run one chaos scenario and evaluate the survivor-correctness checks."""
    cfg = cfg or ChaosBenchConfig()
    _validate(cfg)
    procs_per_node = cfg.procs_per_node
    if cfg.lock_kind in _LOCAL_KINDS:
        procs_per_node = cfg.nprocs  # these algorithms need a single node
    kwargs: Dict[str, Any] = {}
    if monitor is not None:
        kwargs["monitor"] = monitor
    runtime = ClusterRuntime(
        cfg.nprocs,
        procs_per_node=procs_per_node,
        params=_make_params(cfg),
        **kwargs,
    )
    shared: Dict[str, Any] = {
        "requests": [],
        "grants": [],
        "preemptions": [],
        "cs_owner": None,
        "mutex_ok": True,
    }
    per_rank = runtime.run_spmd(chaos_workload, cfg, shared)

    membership = runtime.membership
    report = membership.report() if membership is not None else {}
    victims = set(cfg.victims())
    survivors = tuple(r for r in range(cfg.nprocs) if r not in victims)
    lock_victims = {r for r, _t in cfg.lock_kills}

    result = ChaosBenchResult(
        config=cfg,
        survivors=tuple(report.get("alive", survivors)),
        dead=tuple(report.get("dead", sorted(victims))),
        final_epoch=report.get("epoch", 0),
        detections=report.get("detections", []),
        recoveries=report.get("recoveries", []),
        preemptions=list(shared["preemptions"]),
        freezes=report.get("freezes", []),
        heals=report.get("heals", []),
        rejoins=report.get("rejoins", []),
        survivor_grants=[
            (rank, it) for _t, rank, it in shared["grants"] if rank in set(survivors)
        ],
        finished_us=runtime.env.now,
    )

    checks = result.checks
    checks["victims crashed"] = all(per_rank[r] is CRASHED for r in victims)
    checks["all victims declared"] = set(report.get("dead", ())) == victims
    survivor_results = [per_rank[r] for r in survivors]
    checks["survivors finished"] = all(
        isinstance(res, dict) for res in survivor_results
    )
    checks["survivor memory"] = all(
        res["slots_ok"] and res["dead_slots_ok"]
        for res in survivor_results
        if isinstance(res, dict)
    )
    checks["mutual exclusion"] = bool(shared["mutex_ok"])
    # Every lock victim that actually entered its critical section must be
    # observed as a preempted holder by a later grantee.  A victim that
    # died while still *queued* (e.g. the successor in a double-crash)
    # never held the lock, so no preemption evidence exists for it.
    granted_victims = {
        rank for _t, rank, _it in shared["grants"] if rank in lock_victims
    }
    checks["dead holders preempted"] = granted_victims <= {
        p["dead_holder"] for p in shared["preemptions"]
    }
    grants_per_survivor = {r: 0 for r in survivors}
    for rank, _it in result.survivor_grants:
        grants_per_survivor[rank] += 1
    checks["every survivor served"] = all(
        n == cfg.lock_iters for n in grants_per_survivor.values()
    )
    if cfg.lock_kind not in FIFO_KINDS:
        checks["fifo among survivors"] = None  # token algorithms are not FIFO
    elif cfg.partitions or cfg.stalls:
        # A frozen rank's requests are queued across the window, so grant
        # order legitimately diverges from request-send order.
        checks["fifo among survivors"] = None
    else:
        survivor_set = set(survivors)
        request_order = [
            (rank, it)
            for _t, rank, it in shared["requests"]
            if rank in survivor_set
        ]
        checks["fifo among survivors"] = request_order == result.survivor_grants
    checks["locks recovered"] = all(
        r.get("recovery_latency_us") is not None for r in result.recoveries
    )
    if cfg.partitions or cfg.stalls:
        # Post-heal correctness: nobody is left outside the view, and the
        # survivor memory / mutual-exclusion / every-survivor-served checks
        # above already ran over the healed view.
        checks["partition healed"] = not report.get("excluded", ())
    return result
