"""Ablation studies for the design choices the paper calls out.

Five studies (see DESIGN.md's ablation table):

* :func:`run_crossover` — §3.1.2's closing note: when puts touch fewer than
  ~``log2(N)/2`` servers, the *original* linear fence beats the exchange
  (fewer round trips than exchange phases).  Sweeps the number of put
  targets and locates the crossover; also validates the ``auto`` policy.
* :func:`run_fence_modes` — §3.1.1: ack-mode (LAPI/VIA) vs confirm-mode
  (GM) AllFence cost.
* :func:`run_smp_handoff` — §3.2.2: zero-message lock handoff when the next
  waiter shares the releaser's node (SMP co-location), by varying processes
  per node.
* :func:`run_wake_cost` — sensitivity of both lock algorithms to the server
  wake-up cost the paper's analysis leans on.
* :func:`run_release_opt` — §5 future work: the MCS variant that removes
  the blocking compare&swap from the release critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ga.array import GlobalArray
from ..mp import collectives
from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from .common import Comparison, default_params, format_table
from .lockbench import LockBenchConfig, LockPoint, run_lock_point

__all__ = [
    "run_crossover",
    "run_fence_modes",
    "run_smp_handoff",
    "run_wake_cost",
    "run_release_opt",
    "run_lock_algorithms",
    "render_lock_algorithms",
    "run_lock_fairness",
    "render_lock_fairness",
    "run_skew",
    "CrossoverResult",
]


# ---------------------------------------------------------------------------
# Crossover: few put targets -> linear wins
# ---------------------------------------------------------------------------


@dataclass
class CrossoverResult:
    """Sync time by number of put targets, for each barrier algorithm."""

    nprocs: int
    #: targets -> {algorithm: mean sync us}
    by_targets: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def crossover_targets(self) -> Optional[int]:
        """Smallest target count at which the exchange algorithm wins."""
        for targets in sorted(self.by_targets):
            row = self.by_targets[targets]
            if row["exchange"] <= row["linear"]:
                return targets
        return None

    def render(self) -> str:
        rows = [["targets", "linear (us)", "exchange (us)", "auto (us)", "winner"]]
        for targets in sorted(self.by_targets):
            row = self.by_targets[targets]
            winner = "exchange" if row["exchange"] <= row["linear"] else "linear"
            rows.append(
                [
                    str(targets),
                    f"{row['linear']:.1f}",
                    f"{row['exchange']:.1f}",
                    f"{row['auto']:.1f}",
                    winner,
                ]
            )
        head = (
            f"== Ablation: fence/barrier crossover at {self.nprocs} procs ==\n"
            "paper (section 3.1.2): with puts to fewer than ~log2(N)/2 other "
            "processes the original implementation may win"
        )
        return head + "\n" + format_table(rows)


def _crossover_workload(ctx, algorithm: str, targets: int, iterations: int, chunk: int):
    """Put to ``targets`` distinct remote ranks, then run the barrier."""
    addr = ctx.region.alloc_named("xover", chunk, initial=0)
    sw = ctx.stopwatch("sync")
    peers = [
        (ctx.rank + 1 + k) % ctx.nprocs
        for k in range(targets)
        if (ctx.rank + 1 + k) % ctx.nprocs != ctx.rank
    ]
    for _it in range(iterations):
        for peer in peers:
            yield from ctx.armci.put(ctx.ga(peer, addr), [float(ctx.rank)] * chunk)
        yield from collectives.barrier(ctx.comm)
        sw.start()
        yield from ctx.armci.barrier(algorithm=algorithm)
        sw.stop()
    return sw.samples


def run_crossover(
    nprocs: int = 16,
    targets_list: Sequence[int] = (0, 1, 2, 3, 4, 8, 15),
    iterations: int = 30,
    chunk: int = 16,
    params: Optional[NetworkParams] = None,
) -> CrossoverResult:
    result = CrossoverResult(nprocs=nprocs)
    params = default_params(params)
    for targets in targets_list:
        if targets >= nprocs:
            continue
        row: Dict[str, float] = {}
        for algorithm in ("linear", "exchange", "auto"):
            runtime = ClusterRuntime(nprocs, params=params)
            samples = runtime.run_spmd(
                _crossover_workload, algorithm, targets, iterations, chunk
            )
            pooled = [s for per_rank in samples for s in per_rank]
            row[algorithm] = sum(pooled) / len(pooled)
        result.by_targets[targets] = row
    return result


# ---------------------------------------------------------------------------
# Fence modes: ack (LAPI/VIA) vs confirm (GM)
# ---------------------------------------------------------------------------


def _fence_mode_workload(ctx, iterations: int, chunk: int):
    addr = ctx.region.alloc_named("fm", chunk, initial=0)
    sw = ctx.stopwatch("allfence")
    for _it in range(iterations):
        for k in range(ctx.nprocs - 1):
            peer = (ctx.rank + 1 + k) % ctx.nprocs
            yield from ctx.armci.put(ctx.ga(peer, addr), [1.0] * chunk)
        yield from collectives.barrier(ctx.comm)
        sw.start()
        yield from ctx.armci.allfence()
        sw.stop()
        yield from collectives.barrier(ctx.comm)
    return sw.samples


def run_fence_modes(
    nprocs_list: Sequence[int] = (2, 4, 8, 16),
    iterations: int = 30,
    chunk: int = 16,
    params: Optional[NetworkParams] = None,
) -> Comparison:
    """AllFence cost under the two §3.1.1 subsystem styles."""
    comparison = Comparison(
        title="Ablation: AllFence under confirm-mode (GM) vs ack-mode (LAPI/VIA)",
        metric="mean ARMCI_AllFence time (us)",
        baseline="confirm",
        improved="ack",
    )
    params = default_params(params)
    for mode in ("confirm", "ack"):
        for nprocs in nprocs_list:
            runtime = ClusterRuntime(nprocs, params=params, fence_mode=mode)
            samples = runtime.run_spmd(_fence_mode_workload, iterations, chunk)
            pooled = [s for per_rank in samples for s in per_rank]
            comparison.record(mode, nprocs, sum(pooled) / len(pooled))
    comparison.notes.append(
        "ack-mode fences need no extra messages (puts are acknowledged), "
        "which is why the paper's optimization targets the GM-style case"
    )
    return comparison


# ---------------------------------------------------------------------------
# SMP co-location: zero-message handoffs
# ---------------------------------------------------------------------------


def run_smp_handoff(
    nprocs: int = 8,
    ppn_list: Sequence[int] = (1, 2, 4, 8),
    cfg: Optional[LockBenchConfig] = None,
    params: Optional[NetworkParams] = None,
) -> Comparison:
    """Lock round-trip time vs processes-per-node, hybrid vs MCS.

    With more co-location the MCS lock increasingly passes the lock through
    pure shared memory (zero messages), while the hybrid always visits the
    server.
    """
    base_cfg = cfg or LockBenchConfig(iterations=300)
    comparison = Comparison(
        title=f"Ablation: SMP co-location, {nprocs} processes (lock round-trip)",
        metric="mean request+release time (us); x-axis = processes per node",
        baseline="current",
        improved="new",
    )
    for kind, variant in (("hybrid", "current"), ("mcs", "new")):
        for ppn in ppn_list:
            point_cfg = LockBenchConfig(
                iterations=base_cfg.iterations,
                warmup=base_cfg.warmup,
                op_gap_us=base_cfg.op_gap_us,
                procs_per_node=ppn,
                params=params if params is not None else base_cfg.params,
            )
            point = run_lock_point(kind, nprocs, point_cfg)
            comparison.record(variant, ppn, point.roundtrip_us)
    comparison.notes.append(
        "x-axis is processes per node (not process count); full co-location "
        "turns MCS handoffs into pure shared-memory operations"
    )
    return comparison


# ---------------------------------------------------------------------------
# Server wake cost sensitivity
# ---------------------------------------------------------------------------


def run_wake_cost(
    nprocs: int = 8,
    wake_list: Sequence[float] = (0.0, 9.0, 18.0, 36.0),
    cfg: Optional[LockBenchConfig] = None,
) -> Comparison:
    """Lock round-trip vs server wake-up cost, hybrid vs MCS."""
    base_cfg = cfg or LockBenchConfig(iterations=300)
    comparison = Comparison(
        title=f"Ablation: server wake-up cost sensitivity, {nprocs} processes",
        metric="mean request+release time (us); x-axis = server_wake_us",
        baseline="current",
        improved="new",
    )
    base_params = default_params(base_cfg.params)
    for kind, variant in (("hybrid", "current"), ("mcs", "new")):
        for wake in wake_list:
            point_cfg = LockBenchConfig(
                iterations=base_cfg.iterations,
                warmup=base_cfg.warmup,
                op_gap_us=base_cfg.op_gap_us,
                procs_per_node=base_cfg.procs_per_node,
                params=base_params.with_(server_wake_us=wake),
            )
            point = run_lock_point(kind, nprocs, point_cfg)
            comparison.record(variant, int(wake), point.roundtrip_us)
    comparison.notes.append(
        "the hybrid pays the wake on every unlock's server visit; the MCS "
        "lock's handoffs bypass the server entirely under contention"
    )
    return comparison


# ---------------------------------------------------------------------------
# Future work: optimistic release
# ---------------------------------------------------------------------------


def run_release_opt(
    nprocs_list: Sequence[int] = (1, 2, 4, 8, 16),
    cfg: Optional[LockBenchConfig] = None,
) -> Dict[str, Dict[int, LockPoint]]:
    """MCS vs MCS with the §5 optimistic (non-blocking CAS) release.

    Returns {variant: {nprocs: LockPoint}} with variants ``mcs`` and
    ``mcs-opt``; the optimistic variant should cut the *release* time at low
    contention (where the blocking CAS dominated) without hurting the rest.
    """
    base_cfg = cfg or LockBenchConfig(iterations=300)
    out: Dict[str, Dict[int, LockPoint]] = {"mcs": {}, "mcs-opt": {}}
    for variant, kwargs in (("mcs", None), ("mcs-opt", {"optimistic_release": True})):
        for nprocs in nprocs_list:
            point_cfg = LockBenchConfig(
                iterations=base_cfg.iterations,
                warmup=base_cfg.warmup,
                op_gap_us=base_cfg.op_gap_us,
                procs_per_node=base_cfg.procs_per_node,
                params=base_cfg.params,
                mcs_kwargs=kwargs,
            )
            point = run_lock_point("mcs", nprocs, point_cfg)
            out[variant][nprocs] = point
    return out


# ---------------------------------------------------------------------------
# Process skew (the paper's §4.1 methodology note)
# ---------------------------------------------------------------------------


def _skew_workload(ctx, mode: str, skew_us: float, iterations: int, pre_barrier: bool):
    """GA_Sync timing with per-rank arrival skew, with/without the paper's
    protective MPI_Barrier before the timed call."""
    import random

    from ..ga.array import GlobalArray

    ga = GlobalArray(ctx, "skew", (64, 64))
    rng = random.Random(1234 + ctx.rank)
    sw = ctx.stopwatch("sync")
    for _it in range(iterations):
        for peer in range(ctx.nprocs):
            if peer == ctx.rank:
                continue
            blk = ga.dist.block(peer)
            yield from ga.put(
                (blk.row0, blk.row0 + 1, blk.col0, blk.col1),
                np.full((1, blk.ncols), 1.0),
            )
        # Injected skew: ranks arrive at the sync at different times.
        yield ctx.compute(rng.uniform(0.0, skew_us))
        if pre_barrier:
            yield from collectives.barrier(ctx.comm)
        sw.start()
        yield from ga.sync(mode)
        sw.stop()
    return sw.samples


@dataclass
class SkewResult:
    """Measured GA_Sync by (implementation, pre-barrier?) under skew."""

    nprocs: int
    skew_us: float
    #: (mode, pre_barrier) -> mean reported sync us
    data: Dict[Tuple[str, bool], float] = field(default_factory=dict)

    def inflation(self, mode: str) -> float:
        """How much skew inflates the reported time without the pre-barrier."""
        return self.data[(mode, False)] / self.data[(mode, True)]

    def render(self) -> str:
        rows = [["mode", "pre-barrier (us)", "no pre-barrier (us)", "inflation"]]
        for mode in ("current", "new"):
            rows.append(
                [
                    mode,
                    f"{self.data[(mode, True)]:.1f}",
                    f"{self.data[(mode, False)]:.1f}",
                    f"{self.inflation(mode):.2f}x",
                ]
            )
        return (
            f"== Ablation: process skew and the 4.1 methodology "
            f"({self.nprocs} procs, U[0,{self.skew_us:.0f}]us skew) ==\n"
            + format_table(rows)
        )


def run_skew(
    nprocs: int = 16,
    skew_us: float = 200.0,
    iterations: int = 20,
    params: Optional[NetworkParams] = None,
) -> SkewResult:
    """Reported GA_Sync time with and without the protective pre-barrier.

    §4.1: "We called MPI_Barrier() before calling GA_Sync() ... to ensure
    that the times we were reporting were not due to process skew."
    Without the pre-barrier, the timed interval absorbs the arrival skew of
    the slowest process; the sync algorithms themselves are unchanged.
    """
    result = SkewResult(nprocs=nprocs, skew_us=skew_us)
    params = default_params(params)
    for pre_barrier in (True, False):
        for mode in ("current", "new"):
            runtime = ClusterRuntime(nprocs, params=params)
            per_rank = runtime.run_spmd(
                _skew_workload, mode, skew_us, iterations, pre_barrier
            )
            pooled = [s for samples in per_rank for s in samples]
            result.data[(mode, pre_barrier)] = sum(pooled) / len(pooled)
    return result


# ---------------------------------------------------------------------------
# Related-work lock algorithms (paper §3.2 survey: Raymond [18], Naimi [20])
# ---------------------------------------------------------------------------


def run_lock_algorithms(
    kinds: Sequence[str] = ("hybrid", "mcs", "raymond", "naimi"),
    nprocs_list: Sequence[int] = (2, 4, 8, 16),
    cfg: Optional[LockBenchConfig] = None,
) -> Dict[str, Dict[int, LockPoint]]:
    """Round-trip time of every implemented mutex algorithm.

    The paper's related work surveys tree- and path-compression token
    algorithms before adopting MCS; this ablation quantifies the choice on
    the same cost model (token hops are two-sided messages through the
    *user* processes' progress engines, MCS handoffs are one-sided puts
    through the node servers).
    """
    base_cfg = cfg or LockBenchConfig(iterations=300)
    out: Dict[str, Dict[int, LockPoint]] = {}
    for kind in kinds:
        out[kind] = {}
        for nprocs in nprocs_list:
            point_cfg = LockBenchConfig(
                iterations=base_cfg.iterations,
                warmup=base_cfg.warmup,
                op_gap_us=base_cfg.op_gap_us,
                procs_per_node=base_cfg.procs_per_node,
                params=base_cfg.params,
            )
            out[kind][nprocs] = run_lock_point(kind, nprocs, point_cfg)
    return out


def run_lock_fairness(
    kinds: Sequence[str] = ("hybrid", "mcs", "raymond", "naimi"),
    nprocs: int = 8,
    iterations: int = 200,
    params: Optional[NetworkParams] = None,
) -> Dict[str, Dict[int, float]]:
    """Per-rank mean acquire time for each algorithm (fairness profile).

    The ARMCI locks grant in strict request order (server ticket queue /
    MCS queue), so per-rank waits are uniform.  Token algorithms can favor
    processes topologically close to the token's usual position — Raymond's
    tree makes this visible.  Returns ``{kind: {rank: mean_acquire_us}}``.
    """
    from ..locks import make_lock
    from ..mp import collectives

    params = default_params(params)
    out: Dict[str, Dict[int, float]] = {}

    def workload(ctx, kind):
        lock = make_lock(kind, ctx, home_rank=0, name="fair")
        yield from collectives.barrier(ctx.comm)
        for _w in range(8):
            yield from lock.acquire()
            yield from lock.release()
        lock.acquire_sw.reset()
        for _i in range(iterations):
            yield from lock.acquire()
            yield from lock.release()
        yield from ctx.armci.barrier()
        return lock.acquire_sw.mean()

    for kind in kinds:
        runtime = ClusterRuntime(nprocs, params=params)
        per_rank = runtime.run_spmd(workload, kind)
        out[kind] = dict(enumerate(per_rank))
    return out


def fairness_spread(per_rank: Dict[int, float]) -> float:
    """Max/min ratio of per-rank mean acquire times (1.0 = perfectly fair)."""
    values = list(per_rank.values())
    return max(values) / min(values)


def render_lock_fairness(data: Dict[str, Dict[int, float]]) -> str:
    kinds = list(data)
    ranks = sorted(next(iter(data.values())))
    rows = [["rank"] + [f"{kind} (us)" for kind in kinds]]
    for rank in ranks:
        rows.append(
            [str(rank)] + [f"{data[kind][rank]:.1f}" for kind in kinds]
        )
    rows.append(
        ["max/min"] + [f"{fairness_spread(data[kind]):.2f}" for kind in kinds]
    )
    return (
        "== Ablation: per-rank acquire time (fairness) ==\n"
        + format_table(rows)
    )


def render_lock_algorithms(series: Dict[str, Dict[int, LockPoint]]) -> str:
    kinds = list(series)
    nprocs_list = sorted(next(iter(series.values())))
    rows = [["procs"] + [f"{kind} (us)" for kind in kinds]]
    for n in nprocs_list:
        rows.append(
            [str(n)] + [f"{series[kind][n].roundtrip_us:.1f}" for kind in kinds]
        )
    return (
        "== Ablation: lock round-trip across mutex algorithms "
        "(paper 3.2 related work) ==\n" + format_table(rows)
    )


def render_release_opt(series: Dict[str, Dict[int, LockPoint]]) -> str:
    rows = [["procs", "mcs rel (us)", "mcs-opt rel (us)", "mcs total", "mcs-opt total"]]
    for n in sorted(series["mcs"]):
        a, b = series["mcs"][n], series["mcs-opt"][n]
        rows.append(
            [
                str(n),
                f"{a.release_us:.1f}",
                f"{b.release_us:.1f}",
                f"{a.roundtrip_us:.1f}",
                f"{b.roundtrip_us:.1f}",
            ]
        )
    return (
        "== Ablation: section-5 future work - optimistic MCS release ==\n"
        + format_table(rows)
    )
