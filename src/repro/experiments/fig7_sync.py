"""Figure 7: GA_Sync() time, original vs. new implementation.

The paper's §4.1 test, re-created workload-for-workload:

    "we created a two dimensional array which is distributed uniformly
    over the set of processes, and had each process write values into
    portions of the array which are remote to them.  Next, we performed
    an MPI_Barrier() ... then we called GA_Sync() and timed it.  We
    performed this test 100 times and took the average time for all
    iterations over all processes."

Panel (a) is the two time series, panel (b) the factor of improvement —
the paper reports 1724.3 µs (current) vs 190.3 µs (new) at 16 processes,
a factor of up to 9.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..ga.array import GlobalArray
from ..mp import collectives
from ..net.params import NetworkParams
from ..runtime.cluster import ClusterRuntime
from .common import DEFAULT_NPROCS, Comparison, default_params
from .parallel import run_cells

__all__ = ["Fig7Config", "run_fig7", "sync_workload"]


@dataclass(frozen=True)
class Fig7Config:
    """Workload parameters for the GA_Sync test."""

    nprocs_list: Tuple[int, ...] = DEFAULT_NPROCS
    #: GA_Sync iterations per configuration (paper: 100).
    iterations: int = 100
    #: Global array shape; distributed uniformly over the process grid.
    shape: Tuple[int, int] = (256, 256)
    #: Rows of each remote block written per iteration by each process.
    strip_rows: int = 4
    procs_per_node: int = 1
    params: Optional[NetworkParams] = None


def sync_workload(ctx, mode: str, cfg: Fig7Config):
    """Per-rank Figure 7 program; returns the list of GA_Sync samples (us)."""
    ga = GlobalArray(ctx, "fig7", cfg.shape)
    sw = ctx.stopwatch("ga_sync")
    # The strip written to each remote block is the same every iteration;
    # prepare each transfer once and replay it (identical simulated traffic).
    strips = []
    for rank in range(ctx.nprocs):
        if rank == ctx.rank:
            continue
        blk = ga.dist.block(rank)
        rows = min(cfg.strip_rows, blk.nrows)
        section = (blk.row0, blk.row0 + rows, blk.col0, blk.col1)
        data = np.full((rows, blk.ncols), float(ctx.rank))
        strips.append(ga.prepare_put(section, data))
    for _iteration in range(cfg.iterations):
        # Write values into remote portions of the array.
        for put in strips:
            yield from put.issue()
        # MPI_Barrier so the timing isn't skewed by process arrival.
        yield from collectives.barrier(ctx.comm)
        sw.start()
        yield from ga.sync(mode)
        sw.stop()
    return sw.samples


def _fig7_cell(cell) -> float:
    """One (mode, nprocs) point: mean GA_Sync time (picklable sweep cell)."""
    cfg, mode, nprocs = cell
    runtime = ClusterRuntime(
        nprocs, procs_per_node=cfg.procs_per_node, params=cfg.params
    )
    per_rank_samples = runtime.run_spmd(sync_workload, mode, cfg)
    pooled = [s for samples in per_rank_samples for s in samples]
    return sum(pooled) / len(pooled)


def run_fig7(cfg: Fig7Config = Fig7Config(), jobs: int = 1) -> Comparison:
    """Run both GA_Sync implementations over the process counts.

    ``jobs > 1`` shards the (mode, nprocs) cells over worker processes;
    every cell is an independent simulation, so the numbers are identical
    to a serial run (see :mod:`repro.experiments.parallel`).
    """
    comparison = Comparison(
        title="Figure 7: GA_Sync() time (current vs new)",
        metric="mean GA_Sync time over all iterations and processes (us)",
        baseline="current",
        improved="new",
    )
    cfg = replace(cfg, params=default_params(cfg.params))
    cells = [
        (cfg, mode, nprocs)
        for mode in ("current", "new")
        for nprocs in cfg.nprocs_list
    ]
    means = run_cells(_fig7_cell, cells, jobs=jobs)
    for (_cfg, mode, nprocs), mean_us in zip(cells, means):
        comparison.record(mode, nprocs, mean_us)
    comparison.notes.append(
        f"workload: {cfg.shape} array, {cfg.strip_rows}-row strips to every "
        f"remote block, {cfg.iterations} iterations"
    )
    return comparison
