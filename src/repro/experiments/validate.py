"""Installation self-check: does this build reproduce the paper?

``armci-repro validate`` runs quick versions of the headline experiments
and checks each against the expected range (paper claim + calibration
tolerance).  Exit status reflects the outcome, so it can serve as a CI
gate for the reproduction itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from .ablations import run_crossover, run_release_opt
from .common import format_table
from .fig7_sync import Fig7Config, run_fig7
from .lockbench import LockBenchConfig, run_lock_series

__all__ = ["run_validation", "ValidationCheck"]


@dataclass
class ValidationCheck:
    name: str
    paper_claim: str
    measured: float
    low: float
    high: float

    @property
    def passed(self) -> bool:
        return self.low <= self.measured <= self.high


def run_validation(quick: bool = True) -> Tuple[List[ValidationCheck], str]:
    """Run all headline checks; returns (checks, rendered_report)."""
    checks: List[ValidationCheck] = []

    fig7 = run_fig7(
        Fig7Config(nprocs_list=(2, 16), iterations=12 if quick else 100)
    )
    checks.append(
        ValidationCheck(
            "fig7 factor @16",
            "GA_Sync up to ~9x faster",
            fig7.factor(16),
            6.0,
            12.0,
        )
    )
    checks.append(
        ValidationCheck(
            "fig7 factor @2",
            "new wins at every size",
            fig7.factor(2),
            1.0,
            4.0,
        )
    )

    series = run_lock_series(
        LockBenchConfig(
            nprocs_list=(1, 8), iterations=150 if quick else 400
        )
    )
    factor8 = series["hybrid"][8].roundtrip_us / series["mcs"][8].roundtrip_us
    checks.append(
        ValidationCheck(
            "fig8 factor @8", "lock round-trip up to ~1.25x", factor8, 1.05, 1.6
        )
    )
    factor1 = series["hybrid"][1].roundtrip_us / series["mcs"][1].roundtrip_us
    checks.append(
        ValidationCheck(
            "fig8 factor @1", "current wins at one process", factor1, 0.4, 0.999
        )
    )
    checks.append(
        ValidationCheck(
            "fig9 acquire ratio @8",
            "new acquire always faster",
            series["hybrid"][8].acquire_us / series["mcs"][8].acquire_us,
            1.0,
            2.0,
        )
    )
    checks.append(
        ValidationCheck(
            "fig10 release ratio @8",
            "new release slower (the CAS)",
            series["mcs"][8].release_us / series["hybrid"][8].release_us,
            1.01,
            100.0,
        )
    )
    checks.append(
        ValidationCheck(
            "fig10 release decay",
            "new release falls with contention",
            series["mcs"][1].release_us / series["mcs"][8].release_us,
            1.5,
            50.0,
        )
    )

    crossover = run_crossover(
        nprocs=16, targets_list=(1, 2, 15), iterations=6 if quick else 20
    )
    checks.append(
        ValidationCheck(
            "3.1.2 crossover targets",
            "linear wins below ~log2(16)/2 = 2",
            float(crossover.crossover_targets() or -1),
            1.0,
            4.0,
        )
    )

    opt = run_release_opt(
        nprocs_list=(1,), cfg=LockBenchConfig(iterations=100 if quick else 300)
    )
    checks.append(
        ValidationCheck(
            "section-5 release opt",
            "CAS removal collapses uncontended release",
            opt["mcs"][1].release_us / max(opt["mcs-opt"][1].release_us, 1e-9),
            2.0,
            10_000.0,
        )
    )

    # The fuzzer's oracle must not be vacuous: every seeded mutant caught
    # within a short budget, and a small seed window runs clean.
    from ..fuzz.campaign import run_campaign
    from ..fuzz.selftest import MUTANTS, run_self_test

    self_test = run_self_test(budget=4 if quick else 12)
    checks.append(
        ValidationCheck(
            "fuzz oracle mutants",
            "self-test catches every seeded bug",
            float(sum(r.caught for r in self_test.results)),
            float(len(MUTANTS)),
            float(len(MUTANTS)),
        )
    )
    campaign = run_campaign(num_seeds=4 if quick else 25, do_shrink=False)
    checks.append(
        ValidationCheck(
            "fuzz seed window",
            "random schedules expose no invariant violation",
            0.0 if campaign.ok() else 1.0,
            0.0,
            0.0,
        )
    )

    rows = [["check", "paper claim", "measured", "accept range", "status"]]
    for check in checks:
        rows.append(
            [
                check.name,
                check.paper_claim,
                f"{check.measured:.2f}",
                f"[{check.low:g}, {check.high:g}]",
                "PASS" if check.passed else "FAIL",
            ]
        )
    verdict = (
        "ALL CHECKS PASSED"
        if all(c.passed for c in checks)
        else "VALIDATION FAILED"
    )
    report = (
        "== Reproduction self-check ==\n"
        + format_table(rows)
        + f"\n{verdict} ({sum(c.passed for c in checks)}/{len(checks)})"
    )
    return checks, report
