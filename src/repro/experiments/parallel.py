"""Parallel sweep runner: shard deterministic experiment cells over workers.

Every experiment in this harness is a grid of independent *cells* — one
``(variant, nprocs, repetition)`` point builds its own
:class:`~repro.runtime.cluster.ClusterRuntime` with a fresh
:class:`~repro.sim.core.Environment`, runs to completion, and reduces to a
few numbers.  Cells share no mutable state, so they can be farmed out to
``multiprocessing`` workers without changing a single simulated value:

* **Determinism.** A cell's output is a pure function of its descriptor
  (config, variant, nprocs, seed).  Workers replay exactly the serial
  computation; :func:`run_cells` reassembles results in submission order
  (``Pool.map`` preserves order), so serial and parallel runs emit
  byte-identical tables.  The ``--check`` mode of
  ``scripts/regenerate_results.py`` proves this on every CI run.
* **Seeding.** Cells that need randomness (fault injection, jitter) must
  derive their RNG stream from :func:`cell_seed`, a stable hash of the
  cell descriptor — never from a worker-local or global counter, which
  would make the result depend on how cells were sharded.
* **Fallback.** ``jobs <= 1`` runs the exact serial path (a plain loop in
  this process, no pool, no pickling), so the runner adds nothing to
  single-core environments.

``evaluate`` must be picklable — a function defined at module top level —
for ``jobs > 1``; each experiment module defines its own ``_*_cell``
worker function next to its ``run_*`` entry point.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, TypeVar

__all__ = ["cell_seed", "default_jobs", "run_cells"]

C = TypeVar("C")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` / "use all cores" requests."""
    return os.cpu_count() or 1


def cell_seed(*key) -> int:
    """Deterministic 63-bit seed for a sweep cell.

    Stable across processes, platforms, and Python versions (unlike
    ``hash()``, which is salted per interpreter), so a cell draws the same
    RNG stream whether it runs serially, in any worker, or in any order.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def run_cells(
    evaluate: Callable[[C], R],
    cells: Iterable[C],
    jobs: Optional[int] = 1,
) -> List[R]:
    """Evaluate every cell, optionally across ``jobs`` worker processes.

    Results come back in the order of ``cells`` regardless of which worker
    finished first, and each cell is evaluated exactly once — the parallel
    path is observationally identical to ``[evaluate(c) for c in cells]``.
    ``jobs=None`` or ``jobs=0`` means "one worker per core".
    """
    cells = list(cells)
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    if jobs <= 1 or len(cells) <= 1:
        return [evaluate(cell) for cell in cells]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    with ctx.Pool(min(jobs, len(cells))) as pool:
        # chunksize=1: cells are coarse (whole simulations), so dynamic
        # dispatch beats pre-chunking when cell costs are skewed by nprocs.
        return pool.map(evaluate, cells, chunksize=1)
