"""Generic parameter sweeps over the cost model.

The calibration procedure in docs/model.md is a grid search over a few
host-cost parameters; this module makes that search a reusable artifact:

* :func:`sweep` — evaluate a metric function over a parameter grid;
* :func:`best` — pick the grid point minimizing a loss;
* :func:`calibration_loss` — the loss used to fit the Figure 7/8 targets.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..net.params import NetworkParams, myrinet2000
from .common import format_table
from .parallel import run_cells

__all__ = ["SweepResult", "sweep", "best", "calibration_loss"]

Grid = Dict[str, Sequence[float]]
Point = Dict[str, float]


@dataclass
class SweepResult:
    """All evaluated grid points with their metric outputs."""

    grid: Grid
    #: One entry per grid point: (params-overrides, metrics dict).
    points: List[Tuple[Point, Dict[str, float]]] = field(default_factory=list)

    def render(self, metrics: Sequence[str] | None = None) -> str:
        if not self.points:
            return "(empty sweep)"
        if metrics is None:
            metrics = sorted(self.points[0][1])
        param_names = sorted(self.grid)
        rows = [list(param_names) + list(metrics)]
        for overrides, outputs in self.points:
            rows.append(
                [f"{overrides[p]:g}" for p in param_names]
                + [f"{outputs.get(m, float('nan')):.3f}" for m in metrics]
            )
        return format_table(rows)


def _sweep_cell(cell) -> Dict[str, float]:
    """One grid point (picklable when ``evaluate`` is a top-level function)."""
    evaluate, params = cell
    return evaluate(params)


def sweep(
    grid: Grid,
    evaluate: Callable[[NetworkParams], Dict[str, float]],
    base: NetworkParams | None = None,
    jobs: int = 1,
) -> SweepResult:
    """Evaluate ``evaluate(params)`` at every point of the grid.

    ``grid`` maps :class:`NetworkParams` field names to candidate values;
    the cartesian product is explored in deterministic order.  ``jobs > 1``
    shards grid points over worker processes (``evaluate`` must then be a
    module-level function so it pickles); point order and values are
    identical to a serial run.
    """
    if base is None:
        base = myrinet2000()
    result = SweepResult(grid=grid)
    names = sorted(grid)
    points: List[Point] = [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[name] for name in names))
    ]
    outputs = run_cells(
        _sweep_cell,
        [(evaluate, base.with_(**overrides)) for overrides in points],
        jobs=jobs,
    )
    result.points.extend(zip(points, outputs))
    return result


def best(
    result: SweepResult, loss: Callable[[Dict[str, float]], float]
) -> Tuple[Point, Dict[str, float], float]:
    """The grid point minimizing ``loss(metrics)``."""
    if not result.points:
        raise ValueError("cannot pick from an empty sweep")
    scored = [
        (loss(outputs), overrides, outputs)
        for overrides, outputs in result.points
    ]
    scored.sort(key=lambda item: item[0])
    loss_value, overrides, outputs = scored[0]
    return overrides, outputs, loss_value


def calibration_loss(
    targets: Dict[str, float], weights: Dict[str, float] | None = None
) -> Callable[[Dict[str, float]], float]:
    """Relative-log loss against target metric values.

    ``loss = sum_m w_m * log(measured_m / target_m)^2`` — symmetric in
    over/under-shoot and scale-free across metrics.
    """

    def loss(outputs: Dict[str, float]) -> float:
        total = 0.0
        for metric, target in targets.items():
            measured = outputs.get(metric)
            if measured is None or measured <= 0 or target <= 0:
                return float("inf")
            w = (weights or {}).get(metric, 1.0)
            total += w * math.log(measured / target) ** 2
        return total

    return loss
