"""Legacy shim so ``pip install -e .`` works with older setuptools offline."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["armci-repro = repro.cli:main"]},
)
