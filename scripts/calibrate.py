#!/usr/bin/env python3
"""Re-run the calibration grid search from docs/model.md.

Fits the three host-cost knobs (`server_wake_us`, `server_fence_check_us`,
`server_lock_op_us`) against the paper's headline targets:

* Figure 7 factor at 16 processes ~ 9;
* Figure 8 factor at 8 processes ~ 1.25;
* Figure 8 factor at 1 process ~ 0.8 (current wins).

Prints the full grid and the chosen point; the shipped defaults should be
at (or adjacent to) the winner.  Takes a few minutes.

Run:  python scripts/calibrate.py [--fast]
"""

import sys

from repro.experiments.fig7_sync import Fig7Config, run_fig7
from repro.experiments.lockbench import LockBenchConfig, run_lock_series
from repro.experiments.sweep import best, calibration_loss, sweep
from repro.net.params import myrinet2000

FAST = "--fast" in sys.argv

GRID = {
    "server_wake_us": [14.0, 18.0, 22.0],
    "server_fence_check_us": [5.0, 9.0, 13.0],
    "server_lock_op_us": [2.0, 3.5, 5.0],
}

TARGETS = {
    "fig7_factor_16": 9.0,
    "fig8_factor_8": 1.25,
    "fig8_factor_1": 0.8,
}


def evaluate(params):
    fig7 = run_fig7(
        Fig7Config(nprocs_list=(16,), iterations=6 if FAST else 15, params=params)
    )
    series = run_lock_series(
        LockBenchConfig(
            nprocs_list=(1, 8), iterations=80 if FAST else 200, params=params
        )
    )
    return {
        "fig7_factor_16": fig7.factor(16),
        "fig8_factor_8": series["hybrid"][8].roundtrip_us
        / series["mcs"][8].roundtrip_us,
        "fig8_factor_1": series["hybrid"][1].roundtrip_us
        / series["mcs"][1].roundtrip_us,
    }


def main() -> int:
    print(f"grid: {GRID}")
    print(f"targets: {TARGETS}\n")
    result = sweep(GRID, evaluate)
    print(result.render())
    overrides, outputs, loss_value = best(result, calibration_loss(TARGETS))
    print(f"\nbest point (loss {loss_value:.4f}): {overrides}")
    print(f"metrics there: { {k: round(v, 3) for k, v in outputs.items()} }")
    shipped = myrinet2000()
    print(
        "\nshipped defaults: "
        f"wake={shipped.server_wake_us}, "
        f"fence_check={shipped.server_fence_check_us}, "
        f"lock_op={shipped.server_lock_op_us}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
