#!/usr/bin/env python3
"""Regenerate every table in EXPERIMENTS.md and write them to results/.

Runs the full experiment suite at paper-scale iteration counts and stores:

* ``results/figN_*.txt`` — the paper-style tables;
* ``results/*.csv`` — tidy series for plotting;
* ``results/summary.txt`` — the headline numbers.

Takes a few minutes of wall clock (the simulations are deterministic, so
output is reproducible bit-for-bit, with any ``--jobs`` value).

Run:  python scripts/regenerate_results.py [output_dir] [--jobs N] [--check]

``--jobs N`` shards independent sweep cells over N worker processes (0 =
one per core); the parallel runner reassembles results in deterministic
order, so the emitted files are byte-identical to a serial run.
``--check`` regenerates into a scratch directory and fails if any file
differs from the checked-in ``results/`` — CI runs ``--check --jobs 2``
to prove the parallel/serial equivalence on every push.
"""

import argparse
import pathlib
import sys
import tempfile

from repro.experiments import (
    Fig7Config,
    LockBenchConfig,
    NicBenchConfig,
    run_fig7,
    run_lock_series,
    run_nicbench,
)
from repro.experiments.ablations import (
    render_lock_algorithms,
    render_lock_fairness,
    render_release_opt,
    run_crossover,
    run_fence_modes,
    run_lock_algorithms,
    run_lock_fairness,
    run_release_opt,
    run_skew,
    run_smp_handoff,
    run_wake_cost,
)
from repro.experiments.app_scaling import AppScalingConfig, run_app_scaling
from repro.experiments.lockbench import comparison_from_series
from repro.experiments.microbench import run_microbench
from repro.experiments.report import (
    comparison_to_csv,
    lock_series_to_csv,
    nicbench_to_csv,
    write_csv,
)


def generate(out: pathlib.Path, jobs: int = 1) -> None:
    """Write the full results tree into ``out``."""
    out.mkdir(parents=True, exist_ok=True)

    def save(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"[results] {name}")

    fig7 = run_fig7(Fig7Config(iterations=100), jobs=jobs)
    save("fig7_ga_sync", fig7.render())
    write_csv(comparison_to_csv(fig7), out, "fig7_ga_sync")

    series = run_lock_series(LockBenchConfig(iterations=400))
    for key, metric, title in (
        ("fig8_lock_total", "roundtrip", "Figure 8: time to request and release a lock"),
        ("fig9_lock_acquire", "acquire", "Figure 9: time to request and acquire a lock"),
        ("fig10_lock_release", "release", "Figure 10: time to release a lock"),
    ):
        save(key, comparison_from_series(series, metric, title).render())
    write_csv(lock_series_to_csv(series), out, "figs8_9_10_locks")

    crossover = run_crossover(nprocs=16, iterations=20)
    save("ablation_crossover", crossover.render())
    save("ablation_fence_modes", run_fence_modes(iterations=20).render())
    save("ablation_smp_handoff", run_smp_handoff(nprocs=8).render())
    save("ablation_wake_cost", run_wake_cost(nprocs=8).render())
    save("ablation_release_opt", render_release_opt(run_release_opt()))
    save("ablation_lock_algorithms",
         render_lock_algorithms(run_lock_algorithms()))
    save("ablation_fairness",
         render_lock_fairness(run_lock_fairness(nprocs=8)))
    save("ablation_skew", run_skew(nprocs=16).render())
    save("app_scaling", run_app_scaling(AppScalingConfig()).render())
    save("microbench", run_microbench().render())

    nic = run_nicbench(NicBenchConfig(iterations=100), jobs=jobs)
    save("ablation_nic", nic.render())
    write_csv(nicbench_to_csv(nic), out, "ablation_nic")

    summary = [
        "Headline reproduction numbers (see EXPERIMENTS.md for full tables):",
        f"  Figure 7 factor @16 procs: {fig7.factor(16):.2f} (paper: up to 9)",
        f"  Figure 8 factor @8 procs:  "
        f"{series['hybrid'][8].roundtrip_us / series['mcs'][8].roundtrip_us:.2f}"
        " (paper: up to 1.25)",
        f"  Crossover at {crossover.crossover_targets()} put targets "
        "(paper: ~log2(16)/2 = 2)",
        f"  NIC offload factor @16 procs: {nic.factor(16):.2f} "
        "(host wins at 2, NIC from 4 up)",
    ]
    save("summary", "\n".join(summary))


def check(reference: pathlib.Path, jobs: int) -> int:
    """Regenerate into a scratch dir and diff against ``reference``.

    Returns 0 only when every regenerated file is byte-identical to its
    checked-in counterpart (and no file is missing on either side).
    """
    with tempfile.TemporaryDirectory(prefix="results-check-") as scratch:
        out = pathlib.Path(scratch)
        generate(out, jobs=jobs)
        fresh = {p.name: p for p in sorted(out.iterdir()) if p.is_file()}
        stale = {p.name: p for p in sorted(reference.iterdir()) if p.is_file()}
        failures = []
        for name in sorted(set(fresh) | set(stale)):
            if name not in fresh:
                failures.append(f"{name}: in {reference}/ but not regenerated")
            elif name not in stale:
                failures.append(f"{name}: regenerated but not in {reference}/")
            elif fresh[name].read_bytes() != stale[name].read_bytes():
                failures.append(f"{name}: contents differ")
        if failures:
            print(f"[check] FAILED ({len(failures)} file(s)):")
            for line in failures:
                print(f"  {line}")
            return 1
        print(
            f"[check] ok: {len(fresh)} files byte-identical to {reference}/ "
            f"(jobs={jobs})"
        )
        return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "output_dir", nargs="?", default="results",
        help="where to write the tables (default: results/)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sweep cells (0 = per core); "
        "output is byte-identical for any value",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="regenerate into a scratch dir and fail unless every file is "
        "byte-identical to the checked-in output_dir",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.output_dir)
    if args.check:
        return check(out, jobs=args.jobs)
    generate(out, jobs=args.jobs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
