#!/usr/bin/env python3
"""Regenerate every table in EXPERIMENTS.md and write them to results/.

Runs the full experiment suite at paper-scale iteration counts and stores:

* ``results/figN_*.txt`` — the paper-style tables;
* ``results/*.csv`` — tidy series for plotting;
* ``results/summary.txt`` — the headline numbers.

Takes a few minutes of wall clock (the simulations are deterministic, so
output is reproducible bit-for-bit).

Run:  python scripts/regenerate_results.py [output_dir]
"""

import pathlib
import sys

from repro.experiments import (
    Fig7Config,
    LockBenchConfig,
    NicBenchConfig,
    run_fig7,
    run_lock_series,
    run_nicbench,
)
from repro.experiments.ablations import (
    render_lock_algorithms,
    render_lock_fairness,
    render_release_opt,
    run_crossover,
    run_fence_modes,
    run_lock_algorithms,
    run_lock_fairness,
    run_release_opt,
    run_skew,
    run_smp_handoff,
    run_wake_cost,
)
from repro.experiments.app_scaling import AppScalingConfig, run_app_scaling
from repro.experiments.lockbench import comparison_from_series
from repro.experiments.microbench import run_microbench
from repro.experiments.report import (
    comparison_to_csv,
    lock_series_to_csv,
    nicbench_to_csv,
    write_csv,
)


def main() -> int:
    out = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    out.mkdir(parents=True, exist_ok=True)

    def save(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"[results] {name}")

    fig7 = run_fig7(Fig7Config(iterations=100))
    save("fig7_ga_sync", fig7.render())
    write_csv(comparison_to_csv(fig7), out, "fig7_ga_sync")

    series = run_lock_series(LockBenchConfig(iterations=400))
    for key, metric, title in (
        ("fig8_lock_total", "roundtrip", "Figure 8: time to request and release a lock"),
        ("fig9_lock_acquire", "acquire", "Figure 9: time to request and acquire a lock"),
        ("fig10_lock_release", "release", "Figure 10: time to release a lock"),
    ):
        save(key, comparison_from_series(series, metric, title).render())
    write_csv(lock_series_to_csv(series), out, "figs8_9_10_locks")

    crossover = run_crossover(nprocs=16, iterations=20)
    save("ablation_crossover", crossover.render())
    save("ablation_fence_modes", run_fence_modes(iterations=20).render())
    save("ablation_smp_handoff", run_smp_handoff(nprocs=8).render())
    save("ablation_wake_cost", run_wake_cost(nprocs=8).render())
    save("ablation_release_opt", render_release_opt(run_release_opt()))
    save("ablation_lock_algorithms",
         render_lock_algorithms(run_lock_algorithms()))
    save("ablation_fairness",
         render_lock_fairness(run_lock_fairness(nprocs=8)))
    save("ablation_skew", run_skew(nprocs=16).render())
    save("app_scaling", run_app_scaling(AppScalingConfig()).render())
    save("microbench", run_microbench().render())

    nic = run_nicbench(NicBenchConfig(iterations=100))
    save("ablation_nic", nic.render())
    write_csv(nicbench_to_csv(nic), out, "ablation_nic")

    summary = [
        "Headline reproduction numbers (see EXPERIMENTS.md for full tables):",
        f"  Figure 7 factor @16 procs: {fig7.factor(16):.2f} (paper: up to 9)",
        f"  Figure 8 factor @8 procs:  "
        f"{series['hybrid'][8].roundtrip_us / series['mcs'][8].roundtrip_us:.2f}"
        " (paper: up to 1.25)",
        f"  Crossover at {crossover.crossover_targets()} put targets "
        "(paper: ~log2(16)/2 = 2)",
        f"  NIC offload factor @16 procs: {nic.factor(16):.2f} "
        "(host wins at 2, NIC from 4 up)",
    ]
    save("summary", "\n".join(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
