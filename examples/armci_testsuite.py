#!/usr/bin/env python3
"""The ARMCI correctness battery, as an executable example.

Real ARMCI ships a ``test.c`` that every port must pass; this is the
equivalent program for the simulated library: a battery of self-checking
exercises over every public operation, run on an 8-process cluster of
dual-SMP nodes (so both the shared-memory fast paths and the server paths
are exercised).

Run:  python examples/armci_testsuite.py
"""

from repro import ClusterRuntime, GlobalAddress

CHECKS = []


def check(name):
    def register(fn):
        CHECKS.append((name, fn))
        return fn

    return register


@check("contiguous put/get all pairs")
def t_putget(ctx):
    table = yield from ctx.armci.malloc(8, key="t1")
    for peer in range(ctx.nprocs):
        if peer != ctx.rank:
            yield from ctx.armci.put(
                GlobalAddress(table[peer].rank, table[peer].addr + ctx.rank % 8),
                [ctx.rank * 100],
            )
    yield from ctx.armci.barrier()
    for peer in range(ctx.nprocs):
        if peer != ctx.rank:
            got = yield from ctx.armci.get(
                GlobalAddress(table[peer].rank, table[peer].addr + ctx.rank % 8), 1
            )
            assert got == [ctx.rank * 100], got
    yield from ctx.armci.barrier()


@check("vector (segmented) transfers")
def t_vector(ctx):
    table = yield from ctx.armci.malloc(32, key="t2")
    peer = (ctx.rank + 1) % ctx.nprocs
    segments = [(table[peer].addr + 4 * k, [ctx.rank, k]) for k in range(0, 8, 2)]
    yield from ctx.armci.put_segments(peer, segments)
    yield from ctx.armci.barrier()
    left = (ctx.rank - 1) % ctx.nprocs
    got = yield from ctx.armci.get_segments(
        ctx.rank, [(table[ctx.rank].addr + 4 * k, 2) for k in range(0, 8, 2)]
    )
    expected = []
    for k in range(0, 8, 2):
        expected.extend([left, k])
    assert got == expected, (got, expected)
    yield from ctx.armci.barrier()


@check("strided (PutS/GetS) transfers")
def t_strided(ctx):
    table = yield from ctx.armci.malloc(64, key="t3")
    peer = (ctx.rank + 1) % ctx.nprocs
    values = [float(ctx.rank * 10 + i) for i in range(12)]
    yield from ctx.armci.put_strided(peer, table[peer].addr, [16], [3, 4], values)
    yield from ctx.armci.fence(peer)
    got = yield from ctx.armci.get_strided(peer, table[peer].addr, [16], [3, 4])
    assert got == values
    yield from ctx.armci.barrier()


@check("accumulate sums contributions")
def t_acc(ctx):
    table = yield from ctx.armci.malloc(4, key="t4")
    yield from ctx.armci.acc(table[0], [1.0, 2.0, 3.0, 4.0], scale=2.0)
    yield from ctx.armci.barrier()
    got = yield from ctx.armci.get(table[0], 4)
    n = ctx.nprocs
    assert got == [2.0 * n, 4.0 * n, 6.0 * n, 8.0 * n], got
    yield from ctx.armci.barrier()


@check("read-modify-write family")
def t_rmw(ctx):
    table = yield from ctx.armci.malloc(4, key="t5")
    old = yield from ctx.armci.rmw("fetch_add", table[0], 1)
    assert 0 <= old < ctx.nprocs
    yield from ctx.armci.barrier()
    count = yield from ctx.armci.get(table[0], 1)
    assert count == [ctx.nprocs]
    yield from ctx.armci.barrier()  # keep reads ahead of rank 0's swaps
    if ctx.rank == 0:
        assert (yield from ctx.armci.rmw("swap", table[0], -1)) == ctx.nprocs
        assert (yield from ctx.armci.rmw("cas", table[0], -1, 7)) is True
        assert (yield from ctx.armci.rmw("cas", table[0], -1, 9)) is False
        pair_ga = GlobalAddress(table[0].rank, table[0].addr + 2)
        old_pair = yield from ctx.armci.rmw("swap_pair", pair_ga, (5, 6))
        assert tuple(old_pair) == (0, 0)
        assert (yield from ctx.armci.rmw("cas_pair", pair_ga, (5, 6), (-1, -1)))
    yield from ctx.armci.barrier()


@check("fence ordering guarantee")
def t_fence(ctx):
    table = yield from ctx.armci.malloc(1, key="t6")
    peer = (ctx.rank + 1) % ctx.nprocs
    for i in range(10):
        yield from ctx.armci.put(table[peer], [i])
    yield from ctx.armci.fence(peer)
    yield from ctx.armci.notify(peer)
    yield from ctx.armci.notify_wait((ctx.rank - 1) % ctx.nprocs)
    value = yield from ctx.armci.get(table[ctx.rank], 1)
    assert value == [9], value
    yield from ctx.armci.barrier()


@check("explicit non-blocking handles")
def t_nonblocking(ctx):
    table = yield from ctx.armci.malloc(4, key="t7")
    peer = (ctx.rank + 1) % ctx.nprocs
    handle = yield from ctx.armci.nb_put(table[peer], [9, 8, 7, 6])
    yield from handle.wait()
    yield from ctx.armci.barrier()
    getter = yield from ctx.armci.nb_get(table[ctx.rank], 4)
    got = yield from getter.wait()
    assert got == [9, 8, 7, 6]
    yield from ctx.armci.barrier()


@check("barrier algorithms agree")
def t_barrier_algos(ctx):
    table = yield from ctx.armci.malloc(1, key="t8")
    for algorithm in ("exchange", "linear"):
        peer = (ctx.rank + 3) % ctx.nprocs
        yield from ctx.armci.put(table[peer], [ctx.rank])
        yield from ctx.armci.barrier(algorithm=algorithm)
        got = yield from ctx.armci.get(table[ctx.rank], 1)
        assert got == [(ctx.rank - 3) % ctx.nprocs]


@check("locks protect a counter")
def t_locks(ctx):
    from repro.locks import make_lock

    table = yield from ctx.armci.malloc(1, key="t9")
    for kind in ("hybrid", "mcs"):
        lock = make_lock(kind, ctx, home_rank=0, name=f"suite-{kind}")
        for _ in range(3):
            yield from lock.acquire()
            v = yield from ctx.armci.get(table[0], 1)
            yield from ctx.armci.put(table[0], [v[0] + 1])
            yield from ctx.armci.fence(0)
            yield from lock.release()
        yield from ctx.armci.barrier()
    total = yield from ctx.armci.get(table[0], 1)
    assert total == [2 * 3 * ctx.nprocs], total


def main(ctx):
    passed = []
    for name, fn in CHECKS:
        yield from fn(ctx)
        passed.append(name)
    return passed


if __name__ == "__main__":
    runtime = ClusterRuntime(nprocs=8, procs_per_node=2)
    results = runtime.run_spmd(main)
    assert all(r == results[0] for r in results)
    for name in results[0]:
        print(f"  ok: {name}")
    print(
        f"all {len(CHECKS)} suites passed on 8 procs / 4 dual-SMP nodes "
        f"({runtime.env.now:.0f} simulated us)"
    )
