#!/usr/bin/env python3
"""Dynamic load balancing with the Global Arrays NXTVAL counter.

The canonical Global Arrays work-distribution idiom: a shared counter
element drawn with atomic ``read_inc`` (GA_Read_inc, implemented on the
ARMCI fetch-and-add the locks are built from).  Workers pull task ids until
the pool is exhausted; task costs are deliberately skewed (Zipf-ish) so a
static block distribution leaves some ranks idle while others grind.

The example runs both strategies on identical task sets, verifies they
compute the same global result, and reports makespans and per-rank load.

Run:  python examples/dynamic_load_balance.py
"""

from repro import ClusterRuntime

NPROCS = 8
NTASKS = 96


def task_cost(task_id: int) -> float:
    """Skewed task durations in microseconds: the heavy tasks cluster at
    the front of the pool (as in triangular loops or sorted work lists),
    which is exactly where a static block distribution breaks down."""
    return 480.0 / (1 + task_id // 12) + 4.0


def worker(ctx, strategy):
    # The NXTVAL counter and checksum live in rank 0's ARMCI memory (in
    # full Global Arrays they'd be a 1-element array; see
    # GlobalArray.read_inc for the GA-level wrapper of the same atomic).
    counter = ctx.regions[0].alloc_named("nxtval", 1, initial=0)
    checksum = ctx.regions[0].alloc_named("checksum", 1, initial=0.0)

    done = 0.0
    my_tasks = 0
    if strategy == "dynamic":
        while True:
            task = yield from ctx.armci.rmw("fetch_add", ctx.ga(0, counter), 1)
            if task >= NTASKS:
                break
            yield ctx.compute(task_cost(task))
            done += task * 1.0
            my_tasks += 1
    else:  # static block distribution
        per = NTASKS // ctx.nprocs
        lo = ctx.rank * per
        hi = NTASKS if ctx.rank == ctx.nprocs - 1 else lo + per
        for task in range(lo, hi):
            yield ctx.compute(task_cost(task))
            done += task * 1.0
            my_tasks += 1
    # Publish partial checksum with an atomic accumulate.
    yield from ctx.armci.acc(ctx.ga(0, checksum), [done])
    yield from ctx.armci.barrier()
    if ctx.rank == 0:
        return my_tasks, ctx.regions[0].read(checksum)
    return my_tasks, None


if __name__ == "__main__":
    expected = float(sum(range(NTASKS)))
    makespans = {}
    for strategy in ("static", "dynamic"):
        runtime = ClusterRuntime(nprocs=NPROCS)
        results = runtime.run_spmd(worker, strategy)
        loads = [r[0] for r in results]
        checksum = results[0][1]
        assert checksum == expected, (checksum, expected)
        makespans[strategy] = runtime.env.now
        print(
            f"{strategy:>8}: makespan={runtime.env.now:9.1f} us, "
            f"tasks/rank={loads}"
        )
    assert makespans["dynamic"] < makespans["static"]
    print(
        "identical checksums; the NXTVAL counter (one atomic fetch&add per "
        f"task) beats\nthe static blocks "
        f"{makespans['static'] / makespans['dynamic']:.2f}x on this skewed "
        "pool - the GA idiom the ARMCI\natomics exist to serve"
    )
