#!/usr/bin/env python3
"""Mutex algorithm showdown: ARMCI locks vs the related-work alternatives.

The paper's §3.2 surveys distributed mutual-exclusion algorithms (QOLB,
LH/M, Raymond's tree algorithm, Naimi-Trehel) before adopting the MCS
software queuing lock.  This example runs the same contended
critical-section workload under four algorithms — the original ARMCI hybrid,
the paper's MCS lock, Raymond's tree token, and Naimi-Trehel's
path-compression token — and prints a comparison of round-trip time and
protocol message counts per acquisition.

The token algorithms assume a responsive progress engine in every user
process; the simulation charges it the same wake-up cost as the ARMCI
server thread, which is what makes the one-sided MCS design come out ahead
(as the paper's authors anticipated).

Run:  python examples/mutex_showdown.py
"""

from repro import ClusterRuntime
from repro.locks import make_lock
from repro.mp import collectives

NPROCS = 8
ITERATIONS = 150


def contender(ctx, kind):
    lock = make_lock(kind, ctx, home_rank=0, name="showdown")
    yield from collectives.barrier(ctx.comm)
    for _ in range(ITERATIONS):
        yield from lock.acquire()
        yield ctx.compute(2.0)  # tiny critical section
        yield from lock.release()
    yield from ctx.armci.barrier()
    return lock.total_stats().mean


if __name__ == "__main__":
    print(f"{NPROCS} processes x {ITERATIONS} lock/unlock iterations, "
          f"lock homed at rank 0\n")
    print(f"{'algorithm':>10} {'roundtrip us':>13} {'fabric msgs/acquire':>20}")
    results = {}
    for kind in ("hybrid", "mcs", "raymond", "naimi"):
        runtime = ClusterRuntime(nprocs=NPROCS)
        per_rank = runtime.run_spmd(contender, kind)
        mean_roundtrip = sum(per_rank) / NPROCS
        # All traffic is lock traffic apart from the two bracketing
        # barriers (a small constant).  Count responses too.
        stats = runtime.fabric.stats
        per_acquire = (stats.messages + stats.replies) / (NPROCS * ITERATIONS)
        results[kind] = mean_roundtrip
        print(f"{kind:>10} {mean_roundtrip:13.1f} {per_acquire:20.2f}")
    assert results["mcs"] < results["hybrid"], "paper's headline claim"
    print(
        f"\nMCS vs hybrid factor of improvement: "
        f"{results['hybrid'] / results['mcs']:.2f} "
        "(paper: up to 1.25 at 8 nodes)"
    )
    print(
        "note: MCS sends slightly MORE messages than the hybrid, but its "
        "handoff\npath is one message instead of two and its atomic swap "
        "overlaps the wait -\nwhat matters is the critical path, not the "
        "message count."
    )
