#!/usr/bin/env python3
"""Software pipeline over pure one-sided operations (notify/wait).

ARMCI's progress rules make fully one-sided producer/consumer pipelines
possible: a stage writes its output directly into the next stage's memory
with a put and then *notifies*; the next stage waits on the notification
counter in its own memory — no receives, no server-side rendezvous.  This
example builds a 4-stage pipeline (each stage sharpens a vector) and also
demonstrates the explicit non-blocking handles (ARMCI_NbGet-style) by
overlapping each stage's fetch of auxiliary coefficients with its compute.

Run:  python examples/pipeline_notify.py
"""

from repro import ClusterRuntime

STAGES = 4
ITEMS = 12
WIDTH = 16


def stage(ctx):
    # Collective allocation: every stage's input buffer + coefficient table.
    inputs = yield from ctx.armci.malloc(WIDTH, key="pipeline_in")
    coeffs = yield from ctx.armci.malloc(WIDTH, key="coeffs")
    # Stage 0 owns the coefficient table.
    if ctx.rank == 0:
        ctx.region.write_many(coeffs[0].addr, [1.0 + i / WIDTH for i in range(WIDTH)])
    yield from ctx.armci.barrier()

    produced = []
    for item in range(ITEMS):
        if ctx.rank == 0:
            # Source stage: synthesize the work item.
            data = [float(item + i) for i in range(WIDTH)]
        else:
            # Wait until the previous stage delivered item #item+1 total.
            yield from ctx.armci.notify_wait(ctx.rank - 1, count=item + 1)
            data = ctx.region.read_many(inputs[ctx.rank].addr, WIDTH)
            # Credit back upstream: the buffer may be overwritten now.
            yield from ctx.armci.notify(ctx.rank - 1)

        # Overlap: fetch coefficients (non-blocking) while "computing".
        handle = yield from ctx.armci.nb_get(coeffs[0], WIDTH)
        yield ctx.compute(20.0)
        k = yield from handle.wait()
        data = [d * k[i] for i, d in enumerate(data)]

        if ctx.rank < ctx.nprocs - 1:
            # Flow control: don't overwrite the downstream buffer until the
            # consumer credited the previous item back.
            if item > 0:
                yield from ctx.armci.notify_wait(ctx.rank + 1, count=item)
            # Push to the next stage and notify (data-then-flag contract).
            yield from ctx.armci.put(inputs[ctx.rank + 1], data)
            yield from ctx.armci.notify(ctx.rank + 1)
        else:
            produced.append(sum(data))
    yield from ctx.armci.barrier()
    return produced


if __name__ == "__main__":
    runtime = ClusterRuntime(nprocs=STAGES)
    results = runtime.run_spmd(stage)
    sink = results[-1]
    assert len(sink) == ITEMS

    # Verify against a sequential execution of the same pipeline.
    coeff = [1.0 + i / WIDTH for i in range(WIDTH)]
    expected = []
    for item in range(ITEMS):
        data = [float(item + i) for i in range(WIDTH)]
        for _stage in range(STAGES):
            data = [d * coeff[i] for i, d in enumerate(data)]
        expected.append(sum(data))
    for got, want in zip(sink, expected):
        assert abs(got - want) < 1e-9, (got, want)

    print(f"{STAGES}-stage one-sided pipeline processed {ITEMS} items "
          f"in {runtime.env.now:.1f} simulated us")
    print(f"first outputs: {[round(v, 2) for v in sink[:4]]} (verified)")
    print("pattern: put -> notify -> notify_wait; zero receives posted")
