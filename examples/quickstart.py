#!/usr/bin/env python3
"""Quickstart: one-sided puts, fences, and the combined barrier.

Runs a 4-process simulated cluster.  Every process writes a vector into its
right neighbor's memory with a non-blocking ARMCI put, synchronizes with the
paper's combined ``ARMCI_Barrier()``, and then reads back what its left
neighbor wrote.  The example also contrasts the cost of the original
AllFence+barrier sequence with the new combined operation.

Run:  python examples/quickstart.py
"""

from repro import ClusterRuntime


def main(ctx):
    # Allocate 8 cells in this process's region.  All ranks allocate in the
    # same order, so the address is the same everywhere (SPMD style).
    addr = ctx.region.alloc(8, initial=0)
    right = (ctx.rank + 1) % ctx.nprocs

    # One-sided, non-blocking put into the neighbor's memory.
    yield from ctx.armci.put(ctx.ga(right, addr), [ctx.rank * 10 + i for i in range(8)])

    # New combined global fence + barrier (2 log2 N message latencies).
    t0 = ctx.now
    yield from ctx.armci.barrier()
    t_new = ctx.now - t0

    received = ctx.region.read_many(addr, 8)

    # Do it again the "current" way (linear AllFence + MPI barrier) to see
    # the difference the paper measures.
    yield from ctx.armci.put(ctx.ga(right, addr), [0] * 8)
    t0 = ctx.now
    yield from ctx.armci.barrier(algorithm="linear")
    t_old = ctx.now - t0

    return received, t_new, t_old


if __name__ == "__main__":
    runtime = ClusterRuntime(nprocs=4)
    results = runtime.run_spmd(main)
    for rank, (received, t_new, t_old) in enumerate(results):
        left = (rank - 1) % 4
        assert received == [left * 10 + i for i in range(8)], received
        print(
            f"rank {rank}: got {received} from rank {left}; "
            f"ARMCI_Barrier={t_new:.1f}us vs AllFence+MPI_Barrier={t_old:.1f}us"
        )
    print(f"total simulated time: {runtime.env.now:.1f}us")
