#!/usr/bin/env python3
"""Jacobi stencil over Global Arrays — the sync-algorithm *crossover*.

A classic ARMCI/Global-Arrays pattern: each process owns a block of a 2-D
grid; every iteration it reads its block plus a one-cell halo with
one-sided gets, relaxes, writes its block back, and calls ``GA_Sync()``.

Unlike the all-to-all assembly workload (see ga_matrix_update.py), this
communication pattern touches very *few* remote servers per iteration — the
situation the paper's §3.1.2 closing note warns about: "the original
implementation may provide better performance" when puts go to fewer than
~log2(N)/2 other processes.  The example demonstrates exactly that
crossover, and shows that the suggested programmer-selectable ``auto``
policy picks the right algorithm for this pattern.

Run:  python examples/stencil_exchange.py
"""

import numpy as np

from repro import ClusterRuntime
from repro.ga import GlobalArray

GRID = (64, 64)
ITERATIONS = 10


def stencil(ctx, mode):
    ga = GlobalArray(ctx, "grid", GRID)
    r0, r1, c0, c1 = ga.my_block_section()
    rows, cols = GRID

    # Initialize own block: hot left edge of the global grid.
    block = np.zeros((r1 - r0, c1 - c0))
    if c0 == 0:
        block[:, 0] = 100.0
    yield from ga.put((r0, r1, c0, c1), block)
    yield from ga.sync(mode)

    sync_us = 0.0
    for _step in range(ITERATIONS):
        # Read own block plus a one-cell halo (one-sided gets).
        hr0, hr1 = max(r0 - 1, 0), min(r1 + 1, rows)
        hc0, hc1 = max(c0 - 1, 0), min(c1 + 1, cols)
        patch = yield from ga.get((hr0, hr1, hc0, hc1))
        # Jacobi relaxation on the interior of the patch.
        interior = patch[1:-1, 1:-1] if patch.shape[0] > 2 and patch.shape[1] > 2 else patch
        relaxed = patch.copy()
        if patch.shape[0] > 2 and patch.shape[1] > 2:
            relaxed[1:-1, 1:-1] = 0.25 * (
                patch[:-2, 1:-1] + patch[2:, 1:-1] + patch[1:-1, :-2] + patch[1:-1, 2:]
            )
        # Write back only the cells this rank owns.
        own = relaxed[r0 - hr0 : r0 - hr0 + (r1 - r0), c0 - hc0 : c0 - hc0 + (c1 - c0)]
        if c0 == 0:
            own[:, 0] = 100.0  # boundary condition
        yield from ga.put((r0, r1, c0, c1), own)
        t0 = ctx.now
        yield from ga.sync(mode)
        sync_us += ctx.now - t0

    # Residual heat in this rank's block (sanity metric).
    return sync_us, float(ga.local_block().sum())


if __name__ == "__main__":
    heats = {}
    sync_cost = {}
    for mode in ("current", "new", "auto"):
        runtime = ClusterRuntime(nprocs=16)
        results = runtime.run_spmd(stencil, mode)
        sync_mean = sum(r[0] for r in results) / len(results)
        heats[mode] = sum(r[1] for r in results)
        sync_cost[mode] = sync_mean / ITERATIONS
        makespan = runtime.env.now
        print(
            f"GA_Sync mode={mode:8s}: makespan={makespan:9.1f} us, "
            f"sync share={100 * sync_mean / makespan:5.1f}% "
            f"({sync_mean / ITERATIONS:6.1f} us per sync)"
        )
    # All sync implementations must produce identical physics.
    assert abs(heats["current"] - heats["new"]) < 1e-9, heats
    assert abs(heats["current"] - heats["auto"]) < 1e-9, heats
    print(f"identical result under all syncs (total heat {heats['new']:.3f})")
    print(
        "crossover: this pattern writes to few servers, so 'current' beats "
        f"'new' here ({sync_cost['current']:.1f} vs {sync_cost['new']:.1f} us) "
        f"and 'auto' tracks the winner ({sync_cost['auto']:.1f} us) - paper 3.1.2"
    )
