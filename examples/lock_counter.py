#!/usr/bin/env python3
"""Distributed work queue protected by ARMCI locks.

Eight processes pull work items from a shared queue head protected by a
distributed lock, and push per-item results into a shared histogram with
atomic accumulates.  The example runs the same program under the original
hybrid lock and the paper's MCS software queuing lock and reports the time
each spends in lock operations — the contended-lock scenario where the MCS
lock's one-message handoff pays off (paper Figures 8 and 9).

Run:  python examples/lock_counter.py
"""

from repro import ClusterRuntime
from repro.locks import make_lock

WORK_ITEMS = 64
HIST_BINS = 8


def worker(ctx, lock_kind):
    # Shared state lives in rank 0's region: [next_item, histogram...].
    head_addr = ctx.regions[0].alloc_named("queue_head", 1, initial=0)
    hist_addr = ctx.regions[0].alloc_named("hist", HIST_BINS, initial=0)
    lock = make_lock(lock_kind, ctx, home_rank=0, name="queue")

    processed = 0
    while True:
        # Critical section: pop the next work item.
        yield from lock.acquire()
        item = (yield from ctx.armci.get(ctx.ga(0, head_addr)))[0]
        if item < WORK_ITEMS:
            yield from ctx.armci.put(ctx.ga(0, head_addr), [item + 1])
            yield from ctx.armci.fence(0)
        yield from lock.release()
        if item >= WORK_ITEMS:
            break
        # "Process" the item: simulate compute, then accumulate into the
        # shared histogram (atomic, no lock needed).
        yield ctx.compute(5.0)
        bin_addr = hist_addr + (item % HIST_BINS)
        yield from ctx.armci.acc(ctx.ga(0, bin_addr), [1])
        processed += 1

    yield from ctx.armci.barrier()
    lock_time = lock.acquire_sw.stats().total + lock.release_sw.stats().total
    if ctx.rank == 0:
        histogram = ctx.regions[0].read_many(hist_addr, HIST_BINS)
        return processed, lock_time, histogram
    return processed, lock_time, None


if __name__ == "__main__":
    for kind in ("hybrid", "mcs"):
        runtime = ClusterRuntime(nprocs=8)
        results = runtime.run_spmd(worker, kind)
        total_items = sum(r[0] for r in results)
        mean_lock_us = sum(r[1] for r in results) / len(results)
        histogram = results[0][2]
        assert total_items == WORK_ITEMS, total_items
        assert sum(histogram) == WORK_ITEMS, histogram
        print(
            f"{kind:6s} lock: {total_items} items, histogram={histogram}, "
            f"avg lock time/process={mean_lock_us:7.1f} us, "
            f"makespan={runtime.env.now:8.1f} us"
        )
