#!/usr/bin/env python3
"""Global Arrays workload: distributed matrix assembly with GA_Sync.

This is the shape of the paper's motivating applications (Global Arrays on
ARMCI): every process computes contributions to rows it does *not* own,
ships them with one-sided puts/accumulates, and the whole computation is
punctuated by ``GA_Sync()`` — which is exactly the operation the paper's
Figure 7 makes 9x faster.

The example assembles A[i, j] = i + j/1000 collaboratively (each process
computes a horizontal slab, which is scattered over all owners), syncs, and
verifies the result with one-sided gets.  It reports the time spent inside
GA_Sync for both implementations.

Run:  python examples/ga_matrix_update.py
"""

import numpy as np

from repro import ClusterRuntime
from repro.ga import GlobalArray

SHAPE = (96, 96)
ROUNDS = 5


def assembly(ctx, mode):
    ga = GlobalArray(ctx, "A", SHAPE)
    rows, cols = SHAPE
    slab = rows // ctx.nprocs
    sync_time = 0.0
    for _round in range(ROUNDS):
        # Each process computes a slab of rows (mostly owned by others).
        r0 = ctx.rank * slab
        r1 = rows if ctx.rank == ctx.nprocs - 1 else r0 + slab
        data = np.add.outer(np.arange(r0, r1, dtype=float),
                            np.arange(cols, dtype=float) / 1000.0)
        yield from ga.put((r0, r1, 0, cols), data)
        t0 = ctx.now
        yield from ga.sync(mode)
        sync_time += ctx.now - t0
    # Verify a random-ish section with a one-sided get.
    got = yield from ga.get((10, 20, 30, 40))
    expected = np.add.outer(np.arange(10, 20, dtype=float),
                            np.arange(30, 40, dtype=float) / 1000.0)
    assert np.allclose(got, expected), "assembled array is wrong"
    return sync_time


if __name__ == "__main__":
    for mode in ("current", "new"):
        runtime = ClusterRuntime(nprocs=8)
        sync_times = runtime.run_spmd(assembly, mode)
        mean_sync = sum(sync_times) / len(sync_times)
        print(
            f"GA_Sync mode={mode:8s}: {mean_sync / ROUNDS:7.1f} us per sync "
            f"(total simulated {runtime.env.now:9.1f} us)"
        )
    print("matrix verified on all ranks under both sync implementations")
